//! Small identifier and operand types shared across the VM.

use std::fmt;

/// Index of a function within a [`crate::Program`].
///
/// Function ids double as "function addresses" for indirect calls: a
/// register holding the integer value of a `FuncId` can be the target of
/// [`crate::Op::CallIndirect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A virtual register operand. Each stack frame owns [`crate::program::NUM_REGS`]
/// registers; `Reg(n)` names the `n`-th.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A static call site: the location of a call (or allocation-routine call)
/// instruction in the *original* program.
///
/// Call sites are the currency of the whole HALO pipeline: profiled
/// allocation contexts are chains of call sites, groups are identified by
/// selectors over call sites, and the rewriter instruments call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallSite {
    /// Function containing the call instruction.
    pub func: FuncId,
    /// Instruction index of the call within that function.
    pub pc: u32,
}

impl CallSite {
    /// Construct a call site from raw parts.
    #[inline]
    pub fn new(func: FuncId, pc: u32) -> Self {
        CallSite { func, pc }
    }
}

impl fmt::Display for CallSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.func, self.pc)
    }
}

/// Access width of a load or store, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    W1,
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes.
    W8,
}

impl Width {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bytes())
    }
}

/// Signed comparison condition for [`crate::Op::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (signed)
    Lt,
    /// `a <= b` (signed)
    Le,
    /// `a > b` (signed)
    Gt,
    /// `a >= b` (signed)
    Ge,
}

impl Cond {
    /// Evaluate the condition on two signed operands.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W1.bytes(), 1);
        assert_eq!(Width::W2.bytes(), 2);
        assert_eq!(Width::W4.bytes(), 4);
        assert_eq!(Width::W8.bytes(), 8);
    }

    #[test]
    fn cond_eval_covers_all_orderings() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Le.eval(0, 0));
        assert!(Cond::Gt.eval(5, -5));
        assert!(Cond::Ge.eval(5, 5));
        assert!(!Cond::Ge.eval(4, 5));
    }

    #[test]
    fn call_site_display_and_ordering() {
        let a = CallSite::new(FuncId(1), 2);
        let b = CallSite::new(FuncId(1), 3);
        assert!(a < b);
        assert_eq!(a.to_string(), "fn#1+2");
    }
}
