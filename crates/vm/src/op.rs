//! The instruction set of the simulated binary format.

use crate::ids::{Cond, FuncId, Reg, Width};

/// A single instruction.
///
/// The set is deliberately small: enough arithmetic to index arrays and walk
/// pointer chains, loads/stores against simulated memory, direct and
/// indirect calls, the POSIX.1 allocation routines as dedicated
/// instructions (each such instruction is a *call site* to an externally
/// traceable routine, exactly as a `call malloc@plt` is in a real binary),
/// and the two instrumentation instructions that HALO's rewriting pass
/// inserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `dst = imm`
    Imm(Reg, i64),
    /// `dst = src`
    Mov(Reg, Reg),
    /// `dst = a + b` (wrapping)
    Add(Reg, Reg, Reg),
    /// `dst = a + imm` (wrapping)
    AddImm(Reg, Reg, i64),
    /// `dst = a - b` (wrapping)
    Sub(Reg, Reg, Reg),
    /// `dst = a * b` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `dst = a * imm` (wrapping)
    MulImm(Reg, Reg, i64),
    /// `dst = a / b` (signed; traps on division by zero)
    Div(Reg, Reg, Reg),
    /// `dst = a % b` (signed; traps on division by zero)
    Rem(Reg, Reg, Reg),
    /// `dst = a & b`
    And(Reg, Reg, Reg),
    /// `dst = a | b`
    Or(Reg, Reg, Reg),
    /// `dst = a ^ b`
    Xor(Reg, Reg, Reg),
    /// `dst = *(base + offset)` — a data memory access.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Constant byte offset added to the base.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// `*(base + offset) = src` — a data memory access.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Constant byte offset added to the base.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Direct call. Arguments are copied into the callee's `r0..rN`.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument registers, copied in order into the callee frame.
        args: Vec<Reg>,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// Indirect call through a register holding a function id.
    CallIndirect {
        /// Register holding the callee's [`FuncId`] as an integer.
        target: Reg,
        /// Argument registers.
        args: Vec<Reg>,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// `dst = malloc(size)` — call site to the traceable `malloc` routine.
    Malloc {
        /// Register holding the requested size in bytes.
        size: Reg,
        /// Register receiving the new pointer.
        dst: Reg,
    },
    /// `dst = calloc(count, size)` — zeroed allocation.
    Calloc {
        /// Register holding the element count.
        count: Reg,
        /// Register holding the element size.
        size: Reg,
        /// Register receiving the new pointer.
        dst: Reg,
    },
    /// `dst = realloc(ptr, size)`.
    Realloc {
        /// Register holding the old pointer (0 behaves like `malloc`).
        ptr: Reg,
        /// Register holding the new size.
        size: Reg,
        /// Register receiving the (possibly moved) pointer.
        dst: Reg,
    },
    /// `free(ptr)`; freeing 0 is a no-op.
    Free {
        /// Register holding the pointer to release.
        ptr: Reg,
    },
    /// Unconditional jump to an instruction index in the current function.
    Jump(u32),
    /// Conditional branch to an instruction index in the current function.
    Branch {
        /// Comparison to perform.
        cond: Cond,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Target instruction index if the comparison holds.
        target: u32,
    },
    /// `amount` instructions' worth of non-memory "work" (models the
    /// compute-bound portion of a benchmark for the timing model).
    Compute(u64),
    /// `dst = uniform integer in [0, bound)`; deterministic per run seed.
    Rand {
        /// Destination register.
        dst: Reg,
        /// Register holding the exclusive upper bound (must be > 0).
        bound: Reg,
    },
    /// Return from the current function, optionally with a value.
    Ret(Option<Reg>),
    /// The program's flow of control is now executing on logical thread
    /// `n` (0 is the main thread). The single-threaded interpreter uses
    /// this to model multi-threaded programs: a workload interleaves the
    /// per-thread slices of its malloc/free stream and marks each slice
    /// with the thread it belongs to, exactly the information a native
    /// allocator reads from TLS. Forwarded to the allocator (thread-keyed
    /// shard selection) and the monitor; no other architectural state
    /// changes.
    ThreadSwitch(u16),
    /// Set bit `n` of the shared group-state vector (inserted by the
    /// rewriter immediately before a monitored call site).
    GroupSet(u16),
    /// Clear bit `n` of the shared group-state vector (inserted by the
    /// rewriter immediately after a monitored call site).
    GroupClear(u16),
    /// No operation.
    Nop,
}

impl Op {
    /// Whether this instruction is a call site in the HALO sense: a direct
    /// call, an indirect call, or a call to one of the traceable
    /// memory-management routines.
    #[inline]
    pub fn is_call_site(&self) -> bool {
        matches!(
            self,
            Op::Call { .. }
                | Op::CallIndirect { .. }
                | Op::Malloc { .. }
                | Op::Calloc { .. }
                | Op::Realloc { .. }
                | Op::Free { .. }
        )
    }

    /// Whether this instruction is one of the allocation-routine call sites
    /// (`malloc`, `calloc`, `realloc`, `free`).
    #[inline]
    pub fn is_alloc_routine(&self) -> bool {
        matches!(self, Op::Malloc { .. } | Op::Calloc { .. } | Op::Realloc { .. } | Op::Free { .. })
    }

    /// The intra-function branch target, if this is a control-flow
    /// instruction with one.
    #[inline]
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Op::Jump(t) => Some(*t),
            Op::Branch { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Rewrite the intra-function branch target through `f`, if present.
    /// Used by the rewriter's fixup pass.
    pub fn map_branch_target(&mut self, f: impl FnOnce(u32) -> u32) {
        match self {
            Op::Jump(t) => *t = f(*t),
            Op::Branch { target, .. } => *target = f(*target),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_site_classification() {
        assert!(Op::Call { func: FuncId(0), args: vec![], dst: None }.is_call_site());
        assert!(Op::Malloc { size: Reg(0), dst: Reg(1) }.is_call_site());
        assert!(Op::Free { ptr: Reg(0) }.is_call_site());
        assert!(!Op::Nop.is_call_site());
        assert!(!Op::Jump(3).is_call_site());
        assert!(Op::Malloc { size: Reg(0), dst: Reg(1) }.is_alloc_routine());
        assert!(!Op::Call { func: FuncId(0), args: vec![], dst: None }.is_alloc_routine());
    }

    #[test]
    fn branch_target_mapping() {
        let mut j = Op::Jump(5);
        j.map_branch_target(|t| t + 2);
        assert_eq!(j.branch_target(), Some(7));

        let mut b = Op::Branch { cond: Cond::Eq, a: Reg(0), b: Reg(1), target: 9 };
        b.map_branch_target(|t| t + 1);
        assert_eq!(b.branch_target(), Some(10));

        let mut n = Op::Nop;
        n.map_branch_target(|_| unreachable!());
        assert_eq!(n.branch_target(), None);
    }
}
