//! Demand-paged simulated memory.
//!
//! The simulated address space is 64-bit and byte addressed. Pages come into
//! existence on first touch — exactly the behaviour that lets HALO's
//! allocator reserve "large, demand-paged slabs" (§4.4) without committing
//! memory — and the set of touched pages is what the fragmentation
//! experiment (Table 1) counts as *resident*.

use std::collections::HashMap;

/// Size of a simulated page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// A byte-addressed, demand-paged 64-bit simulated memory.
///
/// Reads from never-touched pages return zeroes without materialising the
/// page; writes materialise pages on demand. Accesses may straddle page
/// boundaries.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Create an empty memory.
    pub fn new() -> Self {
        Memory { pages: HashMap::new() }
    }

    /// Number of pages that have been materialised by writes.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident bytes (materialised pages × page size).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Count materialised pages within `[start, start + len)`.
    pub fn resident_pages_in(&self, start: u64, len: u64) -> usize {
        if len == 0 {
            return 0;
        }
        let first = start / PAGE_SIZE;
        let last = (start + len - 1) / PAGE_SIZE;
        (first..=last).filter(|p| self.pages.contains_key(p)).count()
    }

    /// Read `width` bytes (1, 2, 4, or 8) at `addr`, zero-extended.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        debug_assert!(matches!(width, 1 | 2 | 4 | 8));
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..width as usize]);
        u64::from_le_bytes(buf)
    }

    /// Write the low `width` bytes (1, 2, 4, or 8) of `value` at `addr`.
    pub fn write(&mut self, addr: u64, width: u64, value: u64) {
        debug_assert!(matches!(width, 1 | 2 | 4 | 8));
        let bytes = value.to_le_bytes();
        self.write_bytes(addr, &bytes[..width as usize]);
    }

    /// Read into `buf`, zero-filling bytes on untouched pages.
    pub fn read_bytes(&self, mut addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let page = addr / PAGE_SIZE;
            let off = (addr % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize - off).min(buf.len() - done)).max(1);
            match self.pages.get(&page) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            addr = addr.wrapping_add(n as u64);
        }
    }

    /// Write `buf` at `addr`, materialising pages as needed.
    pub fn write_bytes(&mut self, mut addr: u64, buf: &[u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let page = addr / PAGE_SIZE;
            let off = (addr % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize - off).min(buf.len() - done)).max(1);
            let p = self.pages.entry(page).or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            p[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            addr = addr.wrapping_add(n as u64);
        }
    }

    /// Copy `len` bytes from `src` to `dst` (used by `realloc` to move
    /// object contents). Handles overlap like `memmove`.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) {
        if len == 0 || dst == src {
            return;
        }
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(src, &mut buf);
        self.write_bytes(dst, &buf);
    }

    /// Zero `len` bytes at `addr` (used by `calloc`).
    pub fn zero(&mut self, addr: u64, len: u64) {
        // Writing zeroes still materialises pages: calloc'd memory is
        // touched memory as far as residency accounting is concerned.
        let zeros = [0u8; 256];
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(zeros.len() as u64);
            self.write_bytes(addr + done, &zeros[..n as usize]);
            done += n;
        }
    }

    /// Discard (unmap) all materialised pages fully contained in
    /// `[start, start + len)`. Models an allocator purging dirty pages back
    /// to the OS; subsequent reads in the range see zeroes.
    pub fn discard(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first_full = start.div_ceil(PAGE_SIZE);
        let end = start + len;
        let last_full = end / PAGE_SIZE; // exclusive
        for p in first_full..last_full {
            self.pages.remove(&p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_untouched_returns_zero_without_materialising() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_then_read_roundtrip_all_widths() {
        let mut m = Memory::new();
        for (w, v) in [(1u64, 0xabu64), (2, 0xbeef), (4, 0xdead_beef), (8, 0x0123_4567_89ab_cdef)] {
            m.write(100, w, v);
            assert_eq!(m.read(100, w), v, "width {w}");
        }
    }

    #[test]
    fn narrow_write_zero_extends_on_read() {
        let mut m = Memory::new();
        m.write(8, 8, u64::MAX);
        m.write(8, 2, 0x1234);
        assert_eq!(m.read(8, 2), 0x1234);
        // Bytes 2..8 still hold 0xff.
        assert_eq!(m.read(8, 8), 0xffff_ffff_ffff_1234);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 4;
        m.write(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn copy_moves_bytes_including_overlap() {
        let mut m = Memory::new();
        m.write_bytes(0, b"hello world");
        m.copy(100, 0, 11);
        let mut buf = [0u8; 11];
        m.read_bytes(100, &mut buf);
        assert_eq!(&buf, b"hello world");
        // Overlapping forward copy.
        m.copy(102, 100, 9);
        let mut buf2 = [0u8; 9];
        m.read_bytes(102, &mut buf2);
        assert_eq!(&buf2, b"hello wor");
    }

    #[test]
    fn zero_clears_and_materialises() {
        let mut m = Memory::new();
        m.write(4096, 8, u64::MAX);
        m.zero(4096, 1000);
        assert_eq!(m.read(4096, 8), 0);
        assert!(m.resident_pages() >= 1);
    }

    #[test]
    fn discard_removes_only_fully_contained_pages() {
        let mut m = Memory::new();
        // Touch three consecutive pages.
        m.write(0, 1, 1);
        m.write(PAGE_SIZE, 1, 1);
        m.write(2 * PAGE_SIZE, 1, 1);
        assert_eq!(m.resident_pages(), 3);
        // Range covering the middle page fully, the outer two partially.
        m.discard(10, 2 * PAGE_SIZE);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read(PAGE_SIZE, 1), 0);
        assert_eq!(m.read(0, 1), 1);
    }

    #[test]
    fn resident_pages_in_counts_range() {
        let mut m = Memory::new();
        m.write(0, 1, 1);
        m.write(5 * PAGE_SIZE, 1, 1);
        assert_eq!(m.resident_pages_in(0, PAGE_SIZE), 1);
        assert_eq!(m.resident_pages_in(0, 6 * PAGE_SIZE), 2);
        assert_eq!(m.resident_pages_in(PAGE_SIZE, PAGE_SIZE), 0);
        assert_eq!(m.resident_pages_in(0, 0), 0);
    }
}
