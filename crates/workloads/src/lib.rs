//! Bytecode models of the 11 programs HALO is evaluated on (§5.1).
//!
//! Each module builds one benchmark as a simulated binary encoding the
//! allocation/access regularity that §5.2 identifies as the cause of that
//! benchmark's behaviour — wrapper functions (povray), deep indirect call
//! chains (xalanc), a single `operator new` (leela), direct mallocs from
//! distinct sites (the six pre-2017 programs), per-timestep fresh objects
//! that scatter object-granularity traces (roms), and so on. DESIGN.md §4
//! tabulates the encodings.
//!
//! A [`Workload`] bundles the program with its *train* (profiling) and
//! *ref* (measurement) input specifications, mirroring the paper's
//! methodology of profiling on small inputs and measuring on larger ones.
//!
//! ```
//! use halo_workloads::{all, health};
//!
//! let w = health::build();
//! assert_eq!(w.name, "health");
//! assert_eq!(all().len(), 11);
//! ```

pub mod ammp;
pub mod analyzer;
pub mod art;
pub mod equake;
pub mod ft;
pub mod health;
pub mod leela;
pub mod omnetpp;
pub mod povray;
pub mod roms;
pub mod server;
pub mod toy;
pub(crate) mod util;
pub mod xalanc;
pub mod xalanc_mt;

use halo_vm::Program;

/// One run's input: a random seed plus a scale argument passed to the
/// entry function in `r0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Seed for the program's internal randomness.
    pub seed: u64,
    /// Input-scale argument.
    pub arg: i64,
}

/// A benchmark model: one binary, two input scales.
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name as in the paper's figures.
    pub name: &'static str,
    /// The simulated binary (shared by train and ref runs — the pipeline
    /// rewrites this one binary, so call sites line up).
    pub program: Program,
    /// Profiling input (the paper's *test/train*).
    pub train: RunSpec,
    /// Measurement input (the paper's *ref*).
    pub reference: RunSpec,
    /// What regularity this model encodes (for reports).
    pub note: &'static str,
}

impl Workload {
    /// Convenience: `train.seed` (most callers profile with this).
    pub fn train_seed(&self) -> u64 {
        self.train.seed
    }
}

/// All 11 evaluated benchmarks, in the figures' order.
pub fn all() -> Vec<Workload> {
    vec![
        health::build(),
        ft::build(),
        analyzer::build(),
        ammp::build(),
        art::build(),
        equake::build(),
        povray::build(),
        omnetpp::build(),
        xalanc::build(),
        leela::build(),
        roms::build(),
    ]
}

/// The multi-threaded workload models (not part of the paper's 11): each
/// encodes a threaded malloc/free stream via [`halo_vm::Op::ThreadSwitch`]
/// so thread-keyed allocators (`--shards`) have something to shard.
pub fn multithreaded() -> Vec<Workload> {
    vec![server::build(), xalanc_mt::build()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn every_workload_builds_and_runs_at_train_scale() {
        for w in all() {
            let mut alloc = MallocOnlyAllocator::new();
            let stats = Engine::new(&w.program)
                .with_seed(w.train.seed)
                .with_entry_arg(w.train.arg)
                .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 256 })
                .run(&mut alloc, &mut NullMonitor)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(stats.allocs > 0, "{} makes no allocations", w.name);
            assert!(stats.loads + stats.stores > 0, "{} makes no accesses", w.name);
        }
    }

    #[test]
    fn ref_scale_exceeds_train_scale() {
        for w in all() {
            assert!(w.reference.arg > w.train.arg, "{}", w.name);
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "health", "ft", "analyzer", "ammp", "art", "equake", "povray", "omnetpp", "xalanc",
                "leela", "roms"
            ]
        );
    }

    #[test]
    fn workloads_are_heap_intensive() {
        // §5.1's selection criterion: more than one heap allocation per
        // million instructions.
        for w in all() {
            let mut alloc = MallocOnlyAllocator::new();
            let stats = Engine::new(&w.program)
                .with_seed(w.train.seed)
                .with_entry_arg(w.train.arg)
                .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 256 })
                .run(&mut alloc, &mut NullMonitor)
                .expect("runs");
            let apmi = stats.allocs as f64 * 1e6 / stats.instructions as f64;
            assert!(apmi > 1.0, "{}: {apmi:.2} allocs/M-instr", w.name);
        }
    }
}
