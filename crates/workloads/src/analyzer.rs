//! `analyzer` (FreeBench): circuit timing analyzer.
//!
//! Parses a netlist into net and gate records allocated alternately from
//! distinct direct sites (with cold label strings interleaved), then runs
//! timing passes that chase net → gate pointers. Another direct-site
//! benchmark where both techniques find material.

use crate::util::{counted_loop, list_push, r, walk_list};
use crate::{RunSpec, Workload};
use halo_vm::{ProgramBuilder, Width};

const TIMING_PASSES: i64 = 14;

/// Build the analyzer workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let alloc_net = pb.declare("alloc_net");
    let alloc_gate = pb.declare("alloc_gate");
    let alloc_label = pb.declare("alloc_label");

    {
        // Net: [next:8][gate:8][delay:8][slack:8][fanout:8][pad] = 48.
        let mut f = pb.define(alloc_net);
        f.imm(r(0), 48);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Gate: [kind:8][delay:8][drive:8][pad:8] = 32.
        let mut f = pb.define(alloc_gate);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Label: 48 bytes, written once (pollutes the net size class).
        let mut f = pb.define(alloc_label);
        f.imm(r(0), 48);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let nets = r(20);
    m.mov(nets, r(0));
    let list = r(9);
    m.imm(list, 0);
    // Parse: net + gate + label per element.
    counted_loop(&mut m, r(22), nets, |m| {
        m.call(alloc_net, &[], Some(r(1)));
        m.call(alloc_gate, &[], Some(r(2)));
        m.store(r(2), r(1), 8, Width::W8); // net.gate
        m.imm(r(3), 2);
        m.store(r(3), r(2), 8, Width::W8); // gate.delay
        m.store(r(3), r(1), 16, Width::W8); // net.delay
        list_push(m, list, r(1));
        m.call(alloc_label, &[], Some(r(4)));
        m.store(r(22), r(4), 0, Width::W8); // label written once
    });
    // Timing analysis: walk nets, chase into gates, update slack.
    m.imm(r(23), TIMING_PASSES);
    counted_loop(&mut m, r(24), r(23), |m| {
        walk_list(m, list, r(6), |m| {
            m.load(r(1), r(6), 8, Width::W8); // gate ptr
            m.load(r(2), r(6), 16, Width::W8); // net.delay
            m.load(r(3), r(1), 8, Width::W8); // gate.delay
            m.add(r(4), r(2), r(3));
            m.store(r(4), r(6), 24, Width::W8); // net.slack
            m.store(r(4), r(1), 16, Width::W8); // gate.drive
            m.compute(60); // arrival-time arithmetic
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "analyzer",
        program: pb.finish(main),
        train: RunSpec { seed: 707, arg: 900 },
        reference: RunSpec { seed: 808, arg: 9000 },
        note: "net/gate record pairs from direct sites, cold labels in the \
               net size class",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn analyzer_parses_and_analyzes() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 100_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        assert_eq!(stats.allocs, 3 * w.train.arg as u64);
        assert!(stats.loads > 10_000);
    }
}
