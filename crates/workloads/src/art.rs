//! `art` (SPEC CPU2000): adaptive-resonance-theory image recognition.
//!
//! The hot state is the f1 layer: per-neuron structs allocated in a setup
//! loop, interleaved with per-neuron weight vectors from a second site and
//! cold category records. Recognition repeatedly scans every neuron
//! together with its weights — a uniform, array-driven access pattern over
//! small heap objects.

use crate::util::{counted_loop, r};
use crate::{RunSpec, Workload};
use halo_vm::{ProgramBuilder, Width};

const SCAN_PASSES: i64 = 30;

/// Build the art workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let alloc_neuron = pb.declare("alloc_neuron");
    let alloc_weights = pb.declare("alloc_weights");
    let alloc_category = pb.declare("alloc_category");

    {
        // Neuron: [u:8][v:8][w:8][p:8][q:8] = 40.
        let mut f = pb.define(alloc_neuron);
        f.imm(r(0), 40);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Weight vector: 24 bytes.
        let mut f = pb.define(alloc_weights);
        f.imm(r(0), 24);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Category record: 24 bytes (weight size class), written once.
        let mut f = pb.define(alloc_category);
        f.imm(r(0), 24);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let n = r(20);
    m.mov(n, r(0));
    // Two pointer tables: neurons and weights.
    m.mul_imm(r(1), n, 8);
    m.malloc(r(1), r(21)); // neuron table
    m.mul_imm(r(1), n, 8);
    m.malloc(r(1), r(22)); // weight table
    counted_loop(&mut m, r(23), n, |m| {
        m.call(alloc_neuron, &[], Some(r(2)));
        m.call(alloc_weights, &[], Some(r(3)));
        m.call(alloc_category, &[], Some(r(4)));
        m.store(r(23), r(2), 0, Width::W8); // neuron.u
        m.store(r(23), r(3), 0, Width::W8); // weights[0]
        m.store(r(23), r(4), 0, Width::W8); // category written once
        m.mul_imm(r(5), r(23), 8);
        m.add(r(6), r(21), r(5));
        m.store(r(2), r(6), 0, Width::W8);
        m.add(r(6), r(22), r(5));
        m.store(r(3), r(6), 0, Width::W8);
    });
    // Recognition: scan all neurons with their weights, many passes.
    m.imm(r(24), SCAN_PASSES);
    counted_loop(&mut m, r(25), r(24), |m| {
        counted_loop(m, r(26), n, |m| {
            m.mul_imm(r(1), r(26), 8);
            m.add(r(2), r(21), r(1));
            m.load(r(3), r(2), 0, Width::W8); // neuron ptr
            m.add(r(2), r(22), r(1));
            m.load(r(4), r(2), 0, Width::W8); // weight ptr
            m.load(r(5), r(3), 0, Width::W8); // neuron.u
            m.load(r(6), r(4), 0, Width::W8); // weights[0]
            m.mul(r(7), r(5), r(6));
            m.store(r(7), r(3), 8, Width::W8); // neuron.v
            m.compute(10); // activation arithmetic
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "art",
        program: pb.finish(main),
        train: RunSpec { seed: 111, arg: 700 },
        reference: RunSpec { seed: 222, arg: 7000 },
        note: "neuron + weight-vector pairs scanned uniformly; cold \
               category records in the weight size class",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn art_scans_neurons() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        assert_eq!(stats.allocs, 2 + 3 * w.train.arg as u64);
        assert!(stats.loads as i64 >= 4 * SCAN_PASSES * w.train.arg);
    }
}
