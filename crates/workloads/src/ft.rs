//! `ft` (Ptrdist): minimum-spanning-tree over a pointer-linked graph.
//!
//! Vertices and their adjacency cells come from distinct direct malloc
//! sites, interleaved with cold per-vertex name strings; the MST relaxation
//! walks vertex → edge cell → neighbour vertex chains repeatedly. A
//! classic "easy target" for both HALO and hot data streams (§5.2).

use crate::util::{counted_loop, r, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const EDGES_PER_VERTEX: i64 = 3;
const RELAX_PASSES: i64 = 10;

/// Build the ft workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let alloc_vertex = pb.declare("alloc_vertex");
    let alloc_edge = pb.declare("alloc_edge");
    let alloc_name = pb.declare("alloc_name");

    {
        // Vertex: [next:8][key:8][edges:8][parent:8] = 32 bytes.
        let mut f = pb.define(alloc_vertex);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Edge cell: [next:8][target:8][weight:8] = 24 bytes.
        let mut f = pb.define(alloc_edge);
        f.imm(r(0), 24);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Vertex name: 24 bytes, written once at build time (cold, and
        // sharing the 24→32 size class with edge cells to pollute them).
        let mut f = pb.define(alloc_name);
        f.imm(r(0), 24);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let nv = r(20);
    m.mov(nv, r(0));
    // Vertex pointer table (large, fallback-allocated).
    m.mul_imm(r(1), nv, 8);
    m.malloc(r(1), r(21)); // r21 = table base

    // Build: vertex + name + EDGES_PER_VERTEX edges each.
    counted_loop(&mut m, r(22), nv, |m| {
        m.call(alloc_vertex, &[], Some(r(2)));
        m.imm(r(3), 1_000_000);
        m.store(r(3), r(2), 8, Width::W8); // key = "infinity"
        m.mul_imm(r(4), r(22), 8);
        m.add(r(4), r(21), r(4));
        m.store(r(2), r(4), 0, Width::W8); // table[i] = v
        m.call(alloc_name, &[], Some(r(5)));
        m.store(r(22), r(5), 0, Width::W8); // name written once

        // Edges to random earlier vertices (skip vertex 0).
        let skip = m.label();
        m.branch(Cond::Eq, r(22), ZERO, skip);
        m.imm(r(6), EDGES_PER_VERTEX);
        counted_loop(m, r(7), r(6), |m| {
            m.call(alloc_edge, &[], Some(r(8)));
            m.rand(r(9), r(22)); // target index < i
            m.mul_imm(r(9), r(9), 8);
            m.add(r(9), r(21), r(9));
            m.load(r(10), r(9), 0, Width::W8); // target vertex ptr
            m.store(r(10), r(8), 8, Width::W8); // edge.target
            m.rand(r(11), r(22));
            m.store(r(11), r(8), 16, Width::W8); // edge.weight
            m.load(r(12), r(2), 16, Width::W8); // v.edges head
            m.store(r(12), r(8), 0, Width::W8); // edge.next
            m.store(r(8), r(2), 16, Width::W8); // v.edges = edge
        });
        m.bind(skip);
    });
    // Relax: passes over every vertex's adjacency, updating target keys.
    m.imm(r(23), RELAX_PASSES);
    counted_loop(&mut m, r(24), r(23), |m| {
        counted_loop(m, r(25), nv, |m| {
            m.mul_imm(r(2), r(25), 8);
            m.add(r(2), r(21), r(2));
            m.load(r(3), r(2), 0, Width::W8); // vertex
            m.load(r(4), r(3), 8, Width::W8); // key
            m.load(r(5), r(3), 16, Width::W8); // edge head
            let top = m.label();
            let done = m.label();
            m.bind(top);
            m.branch(Cond::Eq, r(5), ZERO, done);
            m.load(r(6), r(5), 8, Width::W8); // edge.target
            m.load(r(7), r(5), 16, Width::W8); // edge.weight
            m.add(r(8), r(4), r(7));
            m.load(r(9), r(6), 8, Width::W8); // target.key
            let no_update = m.label();
            m.branch(Cond::Ge, r(8), r(9), no_update);
            m.store(r(8), r(6), 8, Width::W8); // relax
            m.store(r(3), r(6), 24, Width::W8); // target.parent
            m.bind(no_update);
            m.compute(16); // key comparison arithmetic
            m.load(r(5), r(5), 0, Width::W8); // next edge
            m.jump(top);
            m.bind(done);
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "ft",
        program: pb.finish(main),
        train: RunSpec { seed: 505, arg: 400 },
        reference: RunSpec { seed: 606, arg: 4000 },
        note: "vertex/edge-cell pairs from direct sites, cold name strings \
               in the edge size class",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn ft_builds_and_relaxes() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        let n = w.train.arg as u64;
        // table + vertex + name per vertex + ~3 edges each (vertex 0 none).
        assert_eq!(stats.allocs, 1 + 2 * n + 3 * (n - 1));
        assert!(stats.loads > 20_000);
    }
}
