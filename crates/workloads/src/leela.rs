//! `leela` (SPEC CPU2017): Go engine (UCT search).
//!
//! "leela allocates memory exclusively through C++'s `new` operator"
//! (§5.2): every allocation funnels through one *library* routine, so the
//! immediate call site is identical for tree nodes and board copies, and
//! only the full call stack — traced through the external frame back to
//! its origin — separates them. Searches allocate thousands of tree nodes
//! then discard almost all of them, leaving scattered survivors that pin
//! their chunks: the paper's Table 1 reports 99.99% fragmentation of
//! grouped data at peak. Playouts are compute-heavy, so the paper sees
//! miss reductions without corresponding speedups.

use crate::util::{counted_loop, r, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const ITERS_PER_SEARCH: i64 = 600;
const BACKPROP_DEPTH: i64 = 48;
const PLAYOUT_COMPUTE: u64 = 400;
/// One node in this many survives a search's mass free.
const SURVIVOR_STRIDE: i64 = 512;

/// Build the leela workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let operator_new = pb.declare("operator_new");
    let expand_node = pb.declare("expand_node");
    let copy_board = pb.declare("copy_board");
    let record_sgf = pb.declare("record_sgf");

    {
        // libstdc++'s operator new: an *external* routine wrapping the
        // single malloc site.
        let mut f = pb.define(operator_new);
        f.external().argc(1);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // UCT node: [parent:8][visits:8][wins:8][move:8][pad:8][pad:8] = 48.
        let mut f = pb.define(expand_node);
        f.argc(1);
        let parent = r(0);
        f.imm(r(2), 48);
        f.call(operator_new, &[r(2)], Some(r(1)));
        f.store(parent, r(1), 0, Width::W8);
        f.store(ZERO, r(1), 8, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Move-record string: 48 bytes through the same operator new,
        // written once per iteration and abandoned — it shares the node
        // size class, interleaving cold data between tree nodes.
        let mut f = pb.define(record_sgf);
        f.argc(1);
        f.imm(r(2), 48);
        f.call(operator_new, &[r(2)], Some(r(1)));
        f.store(r(0), r(1), 0, Width::W8);
        f.ret(None);
        f.finish();
    }
    {
        // Board copy: 256 bytes, hot during one playout only.
        let mut f = pb.define(copy_board);
        f.imm(r(2), 256);
        f.call(operator_new, &[r(2)], Some(r(1)));
        f.imm(r(3), 19);
        f.store(r(3), r(1), 0, Width::W8);
        f.store(r(3), r(1), 128, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let total_iters = r(20);
    m.mov(total_iters, r(0));
    // Node registry for the mass free at the end of each search.
    m.imm(r(1), ITERS_PER_SEARCH * 8);
    m.malloc(r(1), r(21)); // registry base

    // Pattern-matching tables consulted after each playout (large,
    // ungrouped; their traffic separates board accesses from the node
    // accesses of backpropagation in the affinity queue).
    m.imm(r(1), 8192);
    m.malloc(r(1), r(28));
    // searches = total_iters / ITERS_PER_SEARCH, at least 1.
    m.imm(r(2), ITERS_PER_SEARCH);
    m.div(r(22), total_iters, r(2));
    m.imm(r(3), 1);
    let enough = m.label();
    m.branch(Cond::Ge, r(22), r(3), enough);
    m.mov(r(22), r(3));
    m.bind(enough);
    m.imm(r(23), ITERS_PER_SEARCH);
    m.imm(r(24), SURVIVOR_STRIDE);

    counted_loop(&mut m, r(25), r(22), |m| {
        m.imm(r(9), 0); // current leaf (parent chain)

        // One search: expand, playout, backprop.
        counted_loop(m, r(26), r(23), |m| {
            m.call(expand_node, &[r(9)], Some(r(4)));
            m.mov(r(9), r(4));
            m.mul_imm(r(5), r(26), 8);
            m.add(r(5), r(21), r(5));
            m.store(r(4), r(5), 0, Width::W8); // registry[i] = node

            // Playout on a scratch board: compute-dominated.
            m.call(copy_board, &[], Some(r(6)));
            m.load(r(7), r(6), 0, Width::W8);
            m.store(r(7), r(6), 64, Width::W8);
            m.compute(PLAYOUT_COMPUTE);
            m.free(r(6));
            m.call(record_sgf, &[r(26)], None);
            // Consult the pattern tables (24 spread-out reads).
            m.rand(r(17), r(24));
            m.mul_imm(r(17), r(17), 8);
            m.add(r(17), r(28), r(17));
            m.imm(r(18), 24);
            counted_loop(m, r(16), r(18), |m| {
                m.load(r(15), r(17), 0, Width::W8);
                m.add_imm(r(17), r(17), 8);
            });
            // Backprop along the parent chain (bounded).
            m.mov(r(7), r(9));
            m.imm(r(10), BACKPROP_DEPTH);
            counted_loop(m, r(11), r(10), |m| {
                let out = m.label();
                m.branch(Cond::Eq, r(7), ZERO, out);
                m.load(r(12), r(7), 8, Width::W8); // visits
                m.add_imm(r(12), r(12), 1);
                m.store(r(12), r(7), 8, Width::W8);
                m.load(r(7), r(7), 0, Width::W8); // parent
                m.bind(out);
            });
        });
        // New search: free every node except sparse survivors.
        counted_loop(m, r(27), r(23), |m| {
            m.rem(r(13), r(27), r(24));
            let keep = m.label();
            m.branch(Cond::Eq, r(13), ZERO, keep); // survivor: skip free
            m.mul_imm(r(14), r(27), 8);
            m.add(r(14), r(21), r(14));
            m.load(r(15), r(14), 0, Width::W8);
            m.free(r(15));
            m.bind(keep);
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "leela",
        program: pb.finish(main),
        train: RunSpec { seed: 1111, arg: 1200 },
        reference: RunSpec { seed: 2222, arg: 12_000 },
        note: "everything through external operator new (one malloc site); \
               mass frees leave chunk-pinning survivors; compute-heavy \
               playouts",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn leela_searches_and_frees_most_nodes() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        let searches = (w.train.arg / ITERS_PER_SEARCH) as u64;
        let per_search = ITERS_PER_SEARCH as u64;
        // Node + board + sgf record per iteration, plus the registry.
        assert_eq!(stats.allocs, 2 + searches * per_search * 3);
        // All boards freed; nodes freed except survivors.
        let survivors = per_search.div_ceil(SURVIVOR_STRIDE as u64);
        assert_eq!(stats.frees, searches * (per_search * 2 - survivors));
        assert!(stats.instructions > 4 * (stats.loads + stats.stores));
    }
}
