//! `ammp` (SPEC CPU2000): molecular dynamics.
//!
//! Atoms live in a linked list with per-atom neighbour cells; the
//! non-bonded force loop chases atom → neighbour cell → neighbour atom
//! chains with a little arithmetic per interaction. Atom structs come from
//! one direct site, neighbour cells from another, and cold per-atom
//! residue records (sharing the neighbour-cell size class) interleave.

use crate::util::{counted_loop, list_push, r, walk_list, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const NEIGHBOURS_PER_ATOM: i64 = 4;
const FORCE_STEPS: i64 = 8;

/// Build the ammp workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let alloc_atom = pb.declare("alloc_atom");
    let alloc_nbr = pb.declare("alloc_nbr");
    let alloc_residue = pb.declare("alloc_residue");

    {
        // Atom: [next:8][x:8][y:8][z:8][fx:8][fy:8][fz:8][q:8] ... = 96.
        let mut f = pb.define(alloc_atom);
        f.imm(r(0), 96);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Neighbour cell: [next:8][atom:8] = 16.
        let mut f = pb.define(alloc_nbr);
        f.imm(r(0), 16);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Residue record: 16 bytes (neighbour size class), written once.
        let mut f = pb.define(alloc_residue);
        f.imm(r(0), 16);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let natoms = r(20);
    m.mov(natoms, r(0));
    // Atom pointer table for random neighbour wiring.
    m.mul_imm(r(1), natoms, 8);
    m.malloc(r(1), r(21));
    let atoms = r(9);
    m.imm(atoms, 0);
    // Build atoms with neighbour lists; residues interleave.
    counted_loop(&mut m, r(22), natoms, |m| {
        m.call(alloc_atom, &[], Some(r(2)));
        m.store(r(22), r(2), 8, Width::W8); // x
        m.store(r(22), r(2), 16, Width::W8); // y
        list_push(m, atoms, r(2));
        m.mul_imm(r(3), r(22), 8);
        m.add(r(3), r(21), r(3));
        m.store(r(2), r(3), 0, Width::W8); // table[i]
        m.call(alloc_residue, &[], Some(r(4)));
        m.store(r(22), r(4), 0, Width::W8); // residue written once
        let skip = m.label();
        m.branch(Cond::Eq, r(22), ZERO, skip);
        m.imm(r(5), NEIGHBOURS_PER_ATOM);
        counted_loop(m, r(6), r(5), |m| {
            m.call(alloc_nbr, &[], Some(r(7)));
            // Spatially local neighbour: one of the previous 8 atoms.
            m.imm(r(12), 8);
            let near = m.label();
            m.branch(Cond::Ge, r(22), r(12), near);
            m.mov(r(12), r(22));
            m.bind(near);
            m.rand(r(8), r(12));
            m.add_imm(r(8), r(8), 1);
            m.sub(r(8), r(22), r(8));
            m.mul_imm(r(8), r(8), 8);
            m.add(r(8), r(21), r(8));
            m.load(r(10), r(8), 0, Width::W8); // nearby earlier atom
            m.store(r(10), r(7), 8, Width::W8); // nbr.atom
            m.load(r(11), r(2), 88, Width::W8); // atom.nbrs head (offset 88)
            m.store(r(11), r(7), 0, Width::W8);
            m.store(r(7), r(2), 88, Width::W8);
        });
        m.bind(skip);
    });
    // Force loop: for each atom, accumulate over neighbours.
    m.imm(r(23), FORCE_STEPS);
    counted_loop(&mut m, r(24), r(23), |m| {
        walk_list(m, atoms, r(6), |m| {
            m.load(r(1), r(6), 8, Width::W8); // x
            m.load(r(2), r(6), 16, Width::W8); // y
            m.load(r(3), r(6), 88, Width::W8); // nbr head
            let top = m.label();
            let done = m.label();
            m.bind(top);
            m.branch(Cond::Eq, r(3), ZERO, done);
            m.load(r(4), r(3), 8, Width::W8); // nbr.atom
            m.load(r(5), r(4), 8, Width::W8); // neighbour x
            m.sub(r(7), r(1), r(5));
            m.mul(r(7), r(7), r(7));
            m.add(r(2), r(2), r(7));
            m.load(r(3), r(3), 0, Width::W8); // next nbr cell
            m.jump(top);
            m.bind(done);
            m.store(r(2), r(6), 32, Width::W8); // fx
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "ammp",
        program: pb.finish(main),
        train: RunSpec { seed: 909, arg: 500 },
        reference: RunSpec { seed: 1010, arg: 5000 },
        note: "atom/neighbour-cell chains from direct sites; cold residue \
               records in the neighbour size class",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn ammp_builds_and_integrates() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        let n = w.train.arg as u64;
        assert_eq!(stats.allocs, 1 + 2 * n + NEIGHBOURS_PER_ATOM as u64 * (n - 1));
        assert!(stats.loads > 50_000);
    }
}
