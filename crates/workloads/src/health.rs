//! `health` (Olden): hierarchical health-care simulation.
//!
//! The real program simulates villages, each holding linked lists of
//! patients that are admitted, treated, and discharged. Its layout
//! pathology: patient structs and their list cells are allocated from
//! *distinct, direct* malloc sites, interleaved with per-admission record
//! bookkeeping that is written once and never traversed; treatment then
//! walks cell → patient → cell → patient, so a size-segregated allocator
//! scatters the hot pair among the cold records. This is the benchmark
//! where HALO's full-context grouping extracts the largest speedup (~28%
//! in the paper, ~7 points above hot data streams).

use crate::util::{counted_loop, r, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const NUM_VILLAGES: i64 = 16;

/// Build the health workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let alloc_patient = pb.declare("alloc_patient");
    let alloc_cell = pb.declare("alloc_cell");
    let alloc_record = pb.declare("alloc_record");
    let admit = pb.declare("admit");
    let admit_emergency = pb.declare("admit_emergency");
    let treat = pb.declare("treat");
    let discharge = pb.declare("discharge");

    {
        // Patient: [time:8][hosps:8][severity:8][pad:8] = 40 bytes — a
        // cell+patient pair (56 B) straddles cache lines, so pool
        // neighbours share lines and cold neighbours waste them.
        let mut f = pb.define(alloc_patient);
        f.imm(r(0), 40);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // List cell: [next:8][patient:8] = 16 bytes.
        let mut f = pb.define(alloc_cell);
        f.imm(r(0), 16);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Admission record: 32 bytes, written once, never read again.
        let mut f = pb.define(alloc_record);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // admit(slot): new patient at the head of the village list.
        let mut f = pb.define(admit);
        f.argc(1);
        let slot = r(0);
        f.call(alloc_patient, &[], Some(r(1)));
        f.imm(r(2), 1);
        f.store(r(2), r(1), 8, Width::W8); // time
        f.store(r(2), r(1), 16, Width::W8); // hosps
        f.call(alloc_cell, &[], Some(r(3)));
        f.store(r(1), r(3), 8, Width::W8); // cell.patient
        f.load(r(4), slot, 0, Width::W8); // old head
        f.store(r(4), r(3), 0, Width::W8); // cell.next
        f.store(r(3), slot, 0, Width::W8); // head = cell
        f.call(alloc_record, &[], Some(r(5)));
        f.store(r(2), r(5), 0, Width::W8); // record written once
        f.ret(None);
        f.finish();
    }
    {
        // admit_emergency(slot): same patient/cell allocation *sites* as
        // the regular path (inside alloc_patient / alloc_cell), but a
        // different calling context — and the overflow list it feeds is
        // almost never traversed. Full-context identification separates
        // this cold traffic from hot admissions; the immediate call site
        // cannot (§3).
        let mut f = pb.define(admit_emergency);
        f.argc(1);
        let slot = r(0);
        f.call(alloc_patient, &[], Some(r(1)));
        f.imm(r(2), 9);
        f.store(r(2), r(1), 8, Width::W8);
        f.call(alloc_cell, &[], Some(r(3)));
        f.store(r(1), r(3), 8, Width::W8);
        f.load(r(4), slot, 0, Width::W8);
        f.store(r(4), r(3), 0, Width::W8);
        f.store(r(3), slot, 0, Width::W8);
        f.ret(None);
        f.finish();
    }
    {
        // treat(slot): walk the list, touching each cell and its patient.
        let mut f = pb.define(treat);
        f.argc(1);
        let slot = r(0);
        f.load(r(1), slot, 0, Width::W8); // head
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.branch(Cond::Eq, r(1), ZERO, done);
        f.load(r(2), r(1), 8, Width::W8); // cell.patient
        f.load(r(3), r(2), 8, Width::W8); // patient.time
        f.load(r(4), r(2), 16, Width::W8); // patient.hosps
        f.add_imm(r(3), r(3), 1);
        f.store(r(3), r(2), 8, Width::W8); // patient.time++
        f.compute(4); // per-patient diagnosis work
        f.load(r(1), r(1), 0, Width::W8); // next cell
        f.jump(top);
        f.bind(done);
        f.ret(None);
        f.finish();
    }
    {
        // discharge(slot): pop the head patient, if any.
        let mut f = pb.define(discharge);
        f.argc(1);
        let slot = r(0);
        f.load(r(1), slot, 0, Width::W8); // head cell
        let empty = f.label();
        f.branch(Cond::Eq, r(1), ZERO, empty);
        f.load(r(2), r(1), 0, Width::W8); // next
        f.load(r(3), r(1), 8, Width::W8); // patient
        f.store(r(2), slot, 0, Width::W8);
        f.free(r(3));
        f.free(r(1));
        f.bind(empty);
        f.ret(None);
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let steps = r(20);
    m.mov(steps, r(0));
    // villages: array of list-head slots, plus emergency overflow slots.
    m.imm(r(1), NUM_VILLAGES);
    m.imm(r(2), 8);
    m.calloc(r(1), r(2), r(21)); // r21 = villages base
    m.imm(r(1), NUM_VILLAGES);
    m.calloc(r(1), r(2), r(28)); // r28 = overflow base

    // Census table: common memory traffic shared by every configuration.
    m.imm(r(1), 64 * 1024);
    m.malloc(r(1), r(30));
    m.imm(r(22), NUM_VILLAGES);
    m.imm(r(23), 4);
    m.imm(r(17), 3);
    counted_loop(&mut m, r(24), steps, |m| {
        m.rand(r(3), r(22)); // village index
        m.mul_imm(r(4), r(3), 8);
        m.add(r(25), r(21), r(4)); // slot address
        m.add(r(29), r(28), r(4)); // overflow slot address
        m.call(treat, &[r(25)], None);
        m.call(admit, &[r(25)], None);
        // Rare emergency admissions through the same allocation sites.
        m.rand(r(6), r(23));
        let no_emergency = m.label();
        m.branch(Cond::Ne, r(6), ZERO, no_emergency);
        m.call(admit_emergency, &[r(29)], None);
        m.bind(no_emergency);
        // Discharge with probability 1/3 to keep lists slowly growing.
        m.rand(r(5), r(17));
        let skip = m.label();
        m.branch(Cond::Ne, r(5), ZERO, skip);
        m.call(discharge, &[r(25)], None);
        m.bind(skip);
        // Census scan: a 2 KiB window of the statistics table.
        m.rand(r(15), r(22));
        m.mul_imm(r(15), r(15), 4096);
        m.add(r(15), r(30), r(15));
        m.mov(r(16), r(15));
        m.add_imm(r(18), r(15), 2048);
        let ctop = m.label();
        let cdone = m.label();
        m.bind(ctop);
        m.branch(Cond::Ge, r(16), r(18), cdone);
        m.load(r(19), r(16), 0, Width::W8);
        m.add_imm(r(16), r(16), 64);
        m.jump(ctop);
        m.bind(cdone);
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "health",
        program: pb.finish(main),
        train: RunSpec { seed: 101, arg: 1500 },
        reference: RunSpec { seed: 202, arg: 15_000 },
        note: "direct mallocs from distinct sites; hot cell/patient pairs \
               interleaved with cold admission records",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn health_admits_treats_and_discharges() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 100_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        // 3 allocations per admission (patient, cell, record) plus 2 per
        // emergency (~1/4 of steps) plus the two slot arrays.
        let n = w.train.arg as u64;
        assert!(stats.allocs >= 3 + 3 * n, "allocs {}", stats.allocs);
        assert!(stats.allocs <= 3 + 3 * n + n, "allocs {}", stats.allocs);
        assert!(stats.frees > 600, "discharges free patients");
        assert!(stats.loads > 10_000, "treatment walks lists");
    }
}
