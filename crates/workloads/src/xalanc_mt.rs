//! `xalanc-mt`: the XSLT processor with documents partitioned across
//! worker threads.
//!
//! Batch XML pipelines shard their document set over a worker pool; each
//! worker runs the same deep parse chain as the single-threaded `xalanc`
//! model (a shared memory-manager malloc site reachable only through
//! nested — and partly indirect — parse frames), building a worker-local
//! DOM. The workers' allocation streams interleave round-robin, so under
//! a single-arena baseline every worker's nodes are scattered between the
//! other workers' nodes; HALO's grouping (and, under `--shards`, the
//! per-thread sharding) restores per-document locality. Transformation
//! passes then walk each worker's DOM normalising attributes — the hot,
//! layout-sensitive phase. Teardown happens on the main thread, freeing
//! every node a worker allocated: with a sharded backend each free is
//! routed home through the owner shard's remote queue.

use crate::util::{counted_loop, r, walk_list, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

/// Worker logical threads 1..=WORKERS (0 is the coordinating main thread).
const WORKERS: u16 = 4;
const PARSE_DEPTH: usize = 4;
const TRANSFORM_PASSES: i64 = 8;

/// Build the xalanc-mt workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let xalan_alloc = pb.declare("xalan_alloc");
    let create_elem = pb.declare("create_elem");
    let create_attr = pb.declare("create_attr");
    let create_text = pb.declare("create_text");
    let parse: Vec<_> = (0..PARSE_DEPTH).map(|i| pb.declare(&format!("parse{i}"))).collect();

    {
        // The memory manager: one malloc site for every node kind.
        let mut f = pb.define(xalan_alloc);
        f.argc(1);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Element: [next:8][tag:8][attrs:8][text:8][ns:8][pad] = 48.
        let mut f = pb.define(create_elem);
        f.argc(1);
        f.imm(r(2), 48);
        f.call(xalan_alloc, &[r(2)], Some(r(1)));
        f.imm(r(3), 5);
        f.store(r(3), r(1), 8, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Attribute: [next:8][value:8][norm:8][pad:8] = 32, linked onto
        // the parent element.
        let mut f = pb.define(create_attr);
        f.argc(1);
        let parent = r(0);
        f.imm(r(2), 32);
        f.call(xalan_alloc, &[r(2)], Some(r(1)));
        f.imm(r(3), 2);
        f.store(r(3), r(1), 8, Width::W8); // value
        f.load(r(4), parent, 16, Width::W8); // parent.attrs
        f.store(r(4), r(1), 0, Width::W8); // attr.next
        f.store(r(1), parent, 16, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Text node: 32 bytes, linked at parent.text so teardown can
        // return it (the single-threaded model drops the pointer).
        let mut f = pb.define(create_text);
        f.argc(1);
        let parent = r(0);
        f.imm(r(2), 32);
        f.call(xalan_alloc, &[r(2)], Some(r(1)));
        f.imm(r(3), 1);
        f.store(r(3), r(1), 8, Width::W8);
        f.store(r(1), parent, 24, Width::W8); // parent.text
        f.ret(Some(r(1)));
        f.finish();
    }

    // The parse chain: parse_i(kind_fn, parent) forwards down; the middle
    // hop is indirect and the bottom dispatches indirectly through the
    // kind function id — both call sites shared by every node kind, so
    // only deep context separates them (the xalanc signature).
    for i in 0..PARSE_DEPTH {
        let mut f = pb.define(parse[i]);
        f.argc(2); // r0 = kind function id, r1 = parent
        if i + 1 < PARSE_DEPTH {
            if i == PARSE_DEPTH / 2 {
                f.imm(r(2), parse[i + 1].0 as i64);
                f.call_indirect(r(2), &[r(0), r(1)], Some(r(3)));
            } else {
                f.call(parse[i + 1], &[r(0), r(1)], Some(r(3)));
            }
        } else {
            f.call_indirect(r(0), &[r(1)], Some(r(3)));
        }
        f.ret(Some(r(3)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let rounds = r(20);
    m.mov(rounds, r(0));
    // Per-worker DOM heads live in one heap cell array (8 bytes each).
    let heads = r(27);
    m.imm(r(1), (WORKERS as i64) * 8);
    m.malloc(r(1), heads);
    for w in 0..WORKERS {
        m.store(ZERO, heads, (w as i64) * 8, Width::W8);
    }
    m.imm(r(21), create_elem.0 as i64);
    m.imm(r(22), create_attr.0 as i64);
    m.imm(r(23), create_text.0 as i64);
    // Parse: each round hands one document (element + two attributes +
    // one text node) to every worker, round-robin — the interleaving a
    // real worker pool produces.
    counted_loop(&mut m, r(24), rounds, |m| {
        for w in 0..WORKERS {
            m.thread_switch(w + 1);
            m.imm(r(2), 0);
            m.call(parse[0], &[r(21), r(2)], Some(r(3)));
            // Push the new element onto the worker's DOM list.
            m.load(r(8), heads, (w as i64) * 8, Width::W8);
            m.store(r(8), r(3), 0, Width::W8);
            m.store(r(3), heads, (w as i64) * 8, Width::W8);
            m.call(parse[0], &[r(22), r(3)], Some(r(4))); // attr 1
            m.call(parse[0], &[r(22), r(3)], Some(r(4))); // attr 2
            m.call(parse[0], &[r(23), r(3)], Some(r(5))); // text (cold)
        }
    });
    // Transform: each worker normalises its own partition's attributes.
    m.imm(r(25), TRANSFORM_PASSES);
    counted_loop(&mut m, r(26), r(25), |m| {
        for w in 0..WORKERS {
            m.thread_switch(w + 1);
            m.load(r(9), heads, (w as i64) * 8, Width::W8);
            walk_list(m, r(9), r(6), |m| {
                m.load(r(1), r(6), 8, Width::W8); // tag
                m.load(r(2), r(6), 16, Width::W8); // attr head
                let top = m.label();
                let done = m.label();
                m.bind(top);
                m.branch(Cond::Eq, r(2), ZERO, done);
                m.load(r(3), r(2), 8, Width::W8); // attr.value
                m.add(r(3), r(3), r(1));
                m.store(r(3), r(2), 16, Width::W8); // attr.norm
                m.load(r(2), r(2), 0, Width::W8);
                m.jump(top);
                m.bind(done);
            });
        }
    });
    // Teardown on the main thread: free every worker's DOM cross-thread.
    m.thread_switch(0);
    for w in 0..WORKERS {
        m.load(r(9), heads, (w as i64) * 8, Width::W8);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Eq, r(9), ZERO, done);
        m.load(r(10), r(9), 0, Width::W8); // elem.next
        m.load(r(2), r(9), 16, Width::W8); // attr chain
        {
            let atop = m.label();
            let adone = m.label();
            m.bind(atop);
            m.branch(Cond::Eq, r(2), ZERO, adone);
            m.load(r(3), r(2), 0, Width::W8);
            m.free(r(2));
            m.mov(r(2), r(3));
            m.jump(atop);
            m.bind(adone);
        }
        m.load(r(4), r(9), 24, Width::W8); // text node
        m.free(r(4));
        m.free(r(9));
        m.mov(r(9), r(10));
        m.jump(top);
        m.bind(done);
    }
    m.free(heads);
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "xalanc-mt",
        program: pb.finish(main),
        train: RunSpec { seed: 797, arg: 150 },
        reference: RunSpec { seed: 898, arg: 1200 },
        note: "xalanc's deep parse chain with documents partitioned across \
               4 worker threads; main-thread teardown frees cross-thread",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn xalanc_mt_partitions_parses_and_drains() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        let rounds = w.train.arg as u64;
        // Heads cell + 4 workers × 4 nodes per round.
        assert_eq!(stats.allocs, 1 + rounds * (WORKERS as u64) * 4);
        assert_eq!(stats.frees, stats.allocs, "teardown frees every node");
        assert!(stats.max_depth > PARSE_DEPTH, "deep call chains");
    }
}
