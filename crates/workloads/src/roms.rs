//! `roms` (SPEC CPU2017): regional ocean model.
//!
//! A Fortran-style stencil code: persistent grid arrays far above the
//! grouped-object cap dominate the access stream, and each timestep
//! allocates *fresh* work arrays, sweeps them (including interleaved
//! pair-wise passes), and frees them. The per-step freshness is the §5.2
//! pathology for hot data streams: "HALO's affinity graph can represent
//! over 90% of all salient accesses … using only 31 nodes, [while] the
//! hot-data-stream-based approach requires over 150,000 streams" — at
//! object granularity every timestep's pattern is new. HALO itself finds
//! little to improve ("essentially no effect"), and the artefact notes
//! `--max-groups 4` for this benchmark.
//!
//! The regularity roms *does* have lives at **page granularity** (the §6
//! suggestion): each timestep runs a stencil pass reading every state grid
//! at the same index — `acc += grid_i[j]` for all twelve grids — the way an
//! ocean model combines u/v/temperature/salinity fields point-wise. The
//! grids are odd-sized (not a page multiple), but a size-segregated
//! baseline places each one page-aligned, so all twelve conflict-map to the
//! same L1 sets (way stride 4 KiB) and the pass thrashes an 8-way cache
//! with twelve simultaneous lines. At object granularity the grids exceed
//! the 4 KiB tracked cap and are invisible; page-granularity profiling sees
//! their pages, groups the grid context, and bump co-location breaks the
//! page alignment — the odd object size staggers the arrays across sets.

use crate::util::{counted_loop, r, sweep_array};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const NUM_GRIDS: i64 = 12;
/// Odd-sized on purpose (16 KiB + 3 cache lines): page-aligned placement
/// makes all grids set-conflict, while dense bump placement staggers them.
const GRID_BYTES: i64 = 16 * 1024 + 192;
const NUM_TEMPS: i64 = 12;
const TEMP_BYTES: i64 = 1024;

/// Build the roms workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let alloc_grid = pb.declare("alloc_grid");
    let alloc_temp = pb.declare("alloc_temp");
    let alloc_desc = pb.declare("alloc_desc");

    {
        // Grid array: 16 KiB — far beyond the 4 KiB grouped cap.
        let mut f = pb.define(alloc_grid);
        f.imm(r(0), GRID_BYTES);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Per-step work array: 1 KiB.
        let mut f = pb.define(alloc_temp);
        f.imm(r(0), TEMP_BYTES);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Field descriptor: 64 bytes, allocated once at startup.
        let mut f = pb.define(alloc_desc);
        f.imm(r(0), 64);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let steps = r(20);
    m.mov(steps, r(0));
    // Persistent grids + descriptor table.
    m.imm(r(1), NUM_GRIDS * 8);
    m.malloc(r(1), r(21)); // grid table
    m.imm(r(2), NUM_GRIDS);
    counted_loop(&mut m, r(3), r(2), |m| {
        m.call(alloc_grid, &[], Some(r(4)));
        m.mul_imm(r(5), r(3), 8);
        m.add(r(5), r(21), r(5));
        m.store(r(4), r(5), 0, Width::W8);
        m.call(alloc_desc, &[], Some(r(6)));
        m.store(r(3), r(6), 0, Width::W8); // descriptor written once
    });
    m.imm(r(1), NUM_TEMPS * 8);
    m.malloc(r(1), r(22)); // temp table (slots reused per step)
    m.imm(r(23), NUM_TEMPS);
    m.imm(r(24), NUM_GRIDS);

    counted_loop(&mut m, r(25), steps, |m| {
        // Fresh work arrays this step.
        counted_loop(m, r(26), r(23), |m| {
            m.call(alloc_temp, &[], Some(r(4)));
            m.mul_imm(r(5), r(26), 8);
            m.add(r(5), r(22), r(5));
            m.store(r(4), r(5), 0, Width::W8);
            // Initialise: one write per word.
            m.mov(r(6), r(4));
            m.add_imm(r(7), r(4), TEMP_BYTES);
            let top = m.label();
            let done = m.label();
            m.bind(top);
            m.branch(Cond::Ge, r(6), r(7), done);
            m.store(r(26), r(6), 0, Width::W8);
            m.add_imm(r(6), r(6), 8);
            m.jump(top);
            m.bind(done);
        });
        // Pairwise stencil passes: temps (2k, 2k+1) read interleaved.
        m.imm(r(8), NUM_TEMPS / 2);
        counted_loop(m, r(27), r(8), |m| {
            m.mul_imm(r(1), r(27), 16);
            m.add(r(1), r(22), r(1));
            m.load(r(2), r(1), 0, Width::W8); // temp a
            m.load(r(3), r(1), 8, Width::W8); // temp b
            m.imm(r(4), TEMP_BYTES / 8);
            counted_loop(m, r(5), r(4), |m| {
                m.mul_imm(r(6), r(5), 8);
                m.add(r(7), r(2), r(6));
                m.load(r(9), r(7), 0, Width::W8);
                m.add(r(7), r(3), r(6));
                m.load(r(10), r(7), 0, Width::W8);
                m.add(r(9), r(9), r(10));
                m.add(r(7), r(2), r(6));
                m.store(r(9), r(7), 0, Width::W8);
            });
        });
        // Point-wise stencil across *all* grids at the same index —
        // `acc += grid_i[j]` for every field, the ocean-model combination
        // step. Under a page-aligned baseline placement every grid maps
        // the same L1 sets, so the twelve simultaneous lines thrash an
        // 8-way cache; bump co-location staggers them (see module docs).
        m.imm(r(8), GRID_BYTES / 16);
        counted_loop(m, r(26), r(8), |m| {
            m.mul_imm(r(1), r(26), 16); // byte offset of index j
            counted_loop(m, r(27), r(24), |m| {
                m.mul_imm(r(2), r(27), 8);
                m.add(r(2), r(21), r(2));
                m.load(r(3), r(2), 0, Width::W8); // grid_i pointer (hot table)
                m.add(r(3), r(3), r(1));
                m.load(r(4), r(3), 0, Width::W8); // grid_i[j]
                m.add(r(5), r(5), r(4));
            });
        });
        // Long sweeps over the persistent grids.
        counted_loop(m, r(28), r(24), |m| {
            m.mul_imm(r(1), r(28), 8);
            m.add(r(1), r(21), r(1));
            m.load(r(2), r(1), 0, Width::W8);
            sweep_array(m, r(2), GRID_BYTES, r(3), r(4));
        });
        // Work arrays die with the step.
        counted_loop(m, r(29), r(23), |m| {
            m.mul_imm(r(5), r(29), 8);
            m.add(r(5), r(22), r(5));
            m.load(r(6), r(5), 0, Width::W8);
            m.free(r(6));
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "roms",
        program: pb.finish(main),
        train: RunSpec { seed: 3333, arg: 25 },
        reference: RunSpec { seed: 4444, arg: 250 },
        note: "huge persistent grids above the grouped cap; fresh per-step \
               work arrays scatter object-granularity traces",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn roms_steps_allocate_and_free_work_arrays() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 500_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        let steps = w.train.arg as u64;
        assert_eq!(stats.allocs, 2 + 2 * NUM_GRIDS as u64 + steps * NUM_TEMPS as u64);
        assert_eq!(stats.frees, steps * NUM_TEMPS as u64);
    }
}
