//! `equake` (SPEC CPU2000): earthquake simulation (sparse-matrix–vector
//! products).
//!
//! The sparse matrix is built element by element: value blocks and
//! column-index blocks come from two direct sites, allocated interleaved
//! (with cold mesh-comment records); the SMVP kernel then walks each row's
//! element chain touching value block + index block + the dense vector.

use crate::util::{counted_loop, r, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const ELEMS_PER_ROW: i64 = 6;
const SMVP_STEPS: i64 = 10;

/// Build the equake workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let alloc_val = pb.declare("alloc_val");
    let alloc_idx = pb.declare("alloc_idx");
    let alloc_comment = pb.declare("alloc_comment");

    {
        // Value block: [next:8][v00..v22: 72] = 80 bytes.
        let mut f = pb.define(alloc_val);
        f.imm(r(0), 80);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Index block: [col:8][val:8][pad:8] = 24 bytes.
        let mut f = pb.define(alloc_idx);
        f.imm(r(0), 24);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Mesh comment: 80 bytes (value size class), written once.
        let mut f = pb.define(alloc_comment);
        f.imm(r(0), 80);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let rows = r(20);
    m.mov(rows, r(0));
    // Row-head table and the dense x/y vectors (all large, fallback).
    m.mul_imm(r(1), rows, 8);
    m.malloc(r(1), r(21)); // row heads
    m.mul_imm(r(1), rows, 8);
    m.malloc(r(1), r(22)); // x vector
    m.mul_imm(r(1), rows, 8);
    m.malloc(r(1), r(23)); // y vector

    // Assemble the matrix.
    counted_loop(&mut m, r(24), rows, |m| {
        m.imm(r(9), 0); // row chain head
        m.imm(r(2), ELEMS_PER_ROW);
        counted_loop(m, r(3), r(2), |m| {
            m.call(alloc_val, &[], Some(r(4)));
            m.call(alloc_idx, &[], Some(r(5)));
            m.store(r(5), r(4), 8, Width::W8); // val.idx
            m.rand(r(6), rows);
            m.store(r(6), r(5), 0, Width::W8); // idx.col
            m.store(r(3), r(4), 16, Width::W8); // val.v00
            m.store(r(9), r(4), 0, Width::W8); // val.next
            m.mov(r(9), r(4));
        });
        m.call(alloc_comment, &[], Some(r(7)));
        m.store(r(24), r(7), 0, Width::W8); // comment written once
        m.mul_imm(r(8), r(24), 8);
        m.add(r(8), r(21), r(8));
        m.store(r(9), r(8), 0, Width::W8); // rowhead[i]
    });
    // SMVP time steps.
    m.imm(r(25), SMVP_STEPS);
    counted_loop(&mut m, r(26), r(25), |m| {
        counted_loop(m, r(27), rows, |m| {
            m.mul_imm(r(1), r(27), 8);
            m.add(r(1), r(21), r(1));
            m.load(r(2), r(1), 0, Width::W8); // row chain
            m.imm(r(3), 0); // sum
            let top = m.label();
            let done = m.label();
            m.bind(top);
            m.branch(Cond::Eq, r(2), ZERO, done);
            m.load(r(4), r(2), 8, Width::W8); // idx block
            m.load(r(5), r(4), 0, Width::W8); // col
            m.load(r(6), r(2), 16, Width::W8); // v00
            m.mul_imm(r(5), r(5), 8);
            m.add(r(5), r(22), r(5));
            m.load(r(7), r(5), 0, Width::W8); // x[col]
            m.mul(r(8), r(6), r(7));
            m.add(r(3), r(3), r(8));
            m.load(r(2), r(2), 0, Width::W8); // next element
            m.jump(top);
            m.bind(done);
            m.mul_imm(r(1), r(27), 8);
            m.add(r(1), r(23), r(1));
            m.store(r(3), r(1), 0, Width::W8); // y[i]
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "equake",
        program: pb.finish(main),
        train: RunSpec { seed: 333, arg: 300 },
        reference: RunSpec { seed: 444, arg: 3000 },
        note: "value/index block pairs per sparse element from direct \
               sites; cold comments in the value size class",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn equake_assembles_and_multiplies() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        let n = w.train.arg as u64;
        assert_eq!(stats.allocs, 3 + n * (2 * ELEMS_PER_ROW as u64 + 1));
        assert!(stats.loads > 50_000);
    }
}
