//! `povray` (SPEC CPU2017): ray tracer, modelled after the paper's §3
//! motivating analysis.
//!
//! "Almost all heap data is allocated through a wrapper function,
//! `pov::pov_malloc`, thwarting approaches that look to characterise
//! allocations using only the call site to malloc." Geometry objects
//! (planes, CSG composites) are parsed from tokens, linked into an object
//! list, and swept repeatedly during rendering with substantial per-object
//! *compute*; textures are allocated interleaved but rarely touched again.
//!
//! Expected shape (paper Figs. 13/14): HALO cuts L1D misses noticeably
//! (it distinguishes `Copy_Plane`-like from `Copy_CSG`-like contexts
//! through the wrapper) while the hot-data-streams technique, identifying
//! by the single wrapper-internal call site, achieves almost nothing; the
//! benchmark is compute-bound enough that even HALO's miss reduction buys
//! little wall-clock time.

use crate::util::{counted_loop, list_push, r, walk_list, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const RENDER_SWEEPS: i64 = 24;
/// Non-memory instructions of shading work per object per sweep.
const SHADE_COMPUTE: u64 = 90;

/// Build the povray workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let pov_malloc = pb.declare("pov_malloc");
    let create_plane = pb.declare("create_plane");
    let create_csg = pb.declare("create_csg");
    let create_texture = pb.declare("create_texture");

    {
        // The wrapper: ONE malloc site for the whole program.
        let mut f = pb.define(pov_malloc);
        f.argc(1);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Plane: [next:8][normal:8][dist:8][tex:8][flags:8][pad] = 56.
        let mut f = pb.define(create_plane);
        f.imm(r(0), 56);
        f.call(pov_malloc, &[r(0)], Some(r(1)));
        f.imm(r(2), 3);
        f.store(r(2), r(1), 8, Width::W8);
        f.store(r(2), r(1), 16, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // CSG composite: [next:8][children:8][op:8][bbox:8][pad] = 40.
        let mut f = pb.define(create_csg);
        f.imm(r(0), 40);
        f.call(pov_malloc, &[r(0)], Some(r(1)));
        f.imm(r(2), 7);
        f.store(r(2), r(1), 8, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Texture: 64 bytes, written at parse time, rarely read.
        let mut f = pb.define(create_texture);
        f.imm(r(0), 64);
        f.call(pov_malloc, &[r(0)], Some(r(1)));
        f.imm(r(2), 9);
        f.store(r(2), r(1), 8, Width::W8);
        f.store(r(2), r(1), 32, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let tokens = r(20);
    m.mov(tokens, r(0));
    let objects = r(9); // geometry list head
    m.imm(objects, 0);
    m.imm(r(21), 4);
    // Parse: tokens arrive in mixed order; geometry : texture ≈ 1 : 1.
    counted_loop(&mut m, r(22), tokens, |m| {
        m.rand(r(1), r(21));
        let not_plane = m.label();
        let not_csg = m.label();
        let next = m.label();
        m.branch(Cond::Ne, r(1), ZERO, not_plane);
        m.call(create_plane, &[], Some(r(3)));
        list_push(m, objects, r(3));
        m.jump(next);
        m.bind(not_plane);
        m.imm(r(2), 1);
        m.branch(Cond::Ne, r(1), r(2), not_csg);
        m.call(create_csg, &[], Some(r(3)));
        list_push(m, objects, r(3));
        m.jump(next);
        m.bind(not_csg);
        m.call(create_texture, &[], Some(r(3)));
        m.bind(next);
    });
    // Render: repeated intersection sweeps over the geometry list, with
    // heavy shading compute per object.
    m.imm(r(23), RENDER_SWEEPS);
    counted_loop(&mut m, r(24), r(23), |m| {
        walk_list(m, objects, r(6), |m| {
            m.load(r(7), r(6), 8, Width::W8);
            m.load(r(8), r(6), 16, Width::W8);
            m.add(r(7), r(7), r(8));
            m.store(r(7), r(6), 24, Width::W8);
            m.compute(SHADE_COMPUTE);
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "povray",
        program: pb.finish(main),
        train: RunSpec { seed: 303, arg: 800 },
        reference: RunSpec { seed: 404, arg: 8000 },
        note: "all allocation through a pov_malloc wrapper: immediate-call-\
               site identification collapses; compute-bound rendering",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn povray_parses_and_renders() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 100_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        assert_eq!(stats.allocs, w.train.arg as u64);
        // Compute-heavy: instructions dominated by shading work.
        assert!(stats.instructions > 10 * (stats.loads + stats.stores));
    }
}
