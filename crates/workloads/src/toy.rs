//! The paper's Figure 2 program, verbatim in spirit: a token loop
//! allocating three object types through per-type `create_*` procedures,
//! then a traversal touching only types A and B.
//!
//! This is the quickstart workload: small, readable, and exhibiting the
//! exact pathology HALO fixes (Fig. 3a → Fig. 3b).

use crate::util::{counted_loop, list_push, r, walk_list};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

/// Build the Figure 2 workload.
pub fn build() -> Workload {
    // Object layout: [next: 8][payload: 24] = 32 bytes.
    let mut pb = ProgramBuilder::new();
    let create_a = pb.declare("create_a");
    let create_b = pb.declare("create_b");
    let create_c = pb.declare("create_c");
    let do_something = pb.declare("do_something");
    let process = pb.declare("process");

    for f in [create_a, create_b, create_c] {
        let mut fb = pb.define(f);
        fb.imm(r(0), 32);
        fb.malloc(r(0), r(1));
        fb.ret(Some(r(1)));
        fb.finish();
    }
    {
        // do_something(obj): write its payload once and forget it.
        let mut fb = pb.define(do_something);
        fb.argc(1);
        fb.imm(r(1), 1);
        fb.store(r(1), r(0), 8, Width::W8);
        fb.ret(None);
        fb.finish();
    }
    {
        // process(obj): read the payload fields.
        let mut fb = pb.define(process);
        fb.argc(1);
        fb.load(r(1), r(0), 8, Width::W8);
        fb.load(r(2), r(0), 16, Width::W8);
        fb.add(r(3), r(1), r(2));
        fb.store(r(3), r(0), 24, Width::W8);
        fb.ret(None);
        fb.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let tokens = r(20);
    m.mov(tokens, r(0));
    let list = r(9);
    m.imm(list, 0);
    // Allocate: while (!eof) { switch (token.type) { A, B, C } }
    m.imm(r(21), 3);
    counted_loop(&mut m, r(22), tokens, |m| {
        m.rand(r(1), r(21)); // token type
        let not_a = m.label();
        let not_b = m.label();
        let next = m.label();
        m.imm(r(2), 0);
        m.branch(Cond::Ne, r(1), r(2), not_a);
        m.call(create_a, &[], Some(r(3)));
        list_push(m, list, r(3));
        m.jump(next);
        m.bind(not_a);
        m.imm(r(2), 1);
        m.branch(Cond::Ne, r(1), r(2), not_b);
        m.call(create_b, &[], Some(r(3)));
        list_push(m, list, r(3));
        m.jump(next);
        m.bind(not_b);
        m.call(create_c, &[], Some(r(3)));
        m.call(do_something, &[r(3)], None);
        m.bind(next);
    });
    // Access: for (obj = list; obj; obj = obj->sibling) process(obj);
    m.imm(r(23), 16); // sweeps
    counted_loop(&mut m, r(24), r(23), |m| {
        walk_list(m, list, r(6), |m| {
            m.call(process, &[r(6)], None);
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "toy",
        program: pb.finish(main),
        train: RunSpec { seed: 11, arg: 300 },
        reference: RunSpec { seed: 23, arg: 3000 },
        note: "the motivating example: A/B hot and traversed, C cold, \
               allocation order interleaves all three",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn toy_runs_and_allocates_all_three_types() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        assert_eq!(stats.allocs, 300);
    }
}
