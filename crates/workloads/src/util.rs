//! Shared bytecode-emission helpers for workload builders.
//!
//! Conventions used by every workload:
//! * `r31` is never written: it reads as constant 0;
//! * the entry function receives the scale argument in `r0`;
//! * pointer-linked structures put their `next` pointer at offset 0.

use halo_vm::{Cond, FunctionBuilder, Reg, Width};

/// The conventional always-zero register.
pub const ZERO: Reg = Reg(31);

/// Shorthand register constructor.
pub fn r(n: u8) -> Reg {
    Reg(n)
}

/// Emit `for (counter = 0; counter < limit; counter++) body`.
/// `counter` and `limit` must not be clobbered by `body`.
pub fn counted_loop(
    f: &mut FunctionBuilder,
    counter: Reg,
    limit: Reg,
    body: impl FnOnce(&mut FunctionBuilder),
) {
    f.imm(counter, 0);
    let top = f.label();
    let done = f.label();
    f.bind(top);
    f.branch(Cond::Ge, counter, limit, done);
    body(f);
    f.add_imm(counter, counter, 1);
    f.jump(top);
    f.bind(done);
}

/// Emit a singly-linked-list push: `node->next = *head_slot; *head_slot =
/// node`, with the head kept in a register.
pub fn list_push(f: &mut FunctionBuilder, head: Reg, node: Reg) {
    f.store(head, node, 0, Width::W8);
    f.mov(head, node);
}

/// Emit a walk of a list whose head is in `head`: `for (cur = head; cur;
/// cur = cur->next) body`. `body` may clobber anything except `cur`.
pub fn walk_list(
    f: &mut FunctionBuilder,
    head: Reg,
    cur: Reg,
    body: impl FnOnce(&mut FunctionBuilder),
) {
    f.mov(cur, head);
    let top = f.label();
    let done = f.label();
    f.bind(top);
    f.branch(Cond::Eq, cur, ZERO, done);
    body(f);
    f.load(cur, cur, 0, Width::W8);
    f.jump(top);
    f.bind(done);
}

/// Emit a sequential 8-byte-stride sweep over `[base, base + bytes)`,
/// loading each word into `tmp`. Clobbers `cursor` and `tmp`.
pub fn sweep_array(f: &mut FunctionBuilder, base: Reg, bytes: i64, cursor: Reg, tmp: Reg) {
    f.mov(cursor, base);
    f.add_imm(tmp, base, bytes);
    let top = f.label();
    let done = f.label();
    f.bind(top);
    f.branch(Cond::Ge, cursor, tmp, done);
    f.load(Reg(30), cursor, 0, Width::W8);
    f.add_imm(cursor, cursor, 8);
    f.jump(top);
    f.bind(done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, MallocOnlyAllocator, NullMonitor, ProgramBuilder};

    #[test]
    fn counted_loop_iterates_exactly() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(1), 7);
        f.imm(r(2), 0);
        counted_loop(&mut f, r(0), r(1), |f| {
            f.add_imm(r(2), r(2), 3);
        });
        f.ret(Some(r(2)));
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&p).run(&mut alloc, &mut NullMonitor).unwrap();
        assert_eq!(stats.return_value, Some(21));
    }

    #[test]
    fn list_push_and_walk_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(9), 0); // head
        f.imm(r(0), 16);
        f.imm(r(1), 5);
        counted_loop(&mut f, r(2), r(1), |f| {
            f.malloc(r(0), r(3));
            list_push(f, r(9), r(3));
        });
        f.imm(r(4), 0); // count nodes
        walk_list(&mut f, r(9), r(5), |f| {
            f.add_imm(r(4), r(4), 1);
        });
        f.ret(Some(r(4)));
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&p).run(&mut alloc, &mut NullMonitor).unwrap();
        assert_eq!(stats.return_value, Some(5));
    }

    #[test]
    fn sweep_touches_every_word() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 64);
        f.malloc(r(0), r(1));
        sweep_array(&mut f, r(1), 64, r(2), r(3));
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&p).run(&mut alloc, &mut NullMonitor).unwrap();
        assert_eq!(stats.loads, 8);
    }
}
