//! `omnetpp` (SPEC CPU2017): discrete-event network simulation.
//!
//! Event processing happens in waves: a batch of messages is scheduled
//! from three module contexts, then processed — reading message fields,
//! emitting a write-once event-log record, and freeing the message. *All*
//! of it (messages and log records alike) allocates through the
//! `new_message → msg_alloc` wrapper pair, so the immediate call site
//! identifies nothing, while HALO's contexts separate the transient
//! message traffic from the cold log records. The paper reports a modest
//! ~4% HALO speedup and notes the artefact runs this benchmark with
//! `--chunk-size 131072` and always-reused chunks.

use crate::util::{counted_loop, r, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const WAVE: i64 = 32;
const RETAIN: i64 = 256;

/// Build the omnetpp workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let msg_alloc = pb.declare("msg_alloc");
    let new_message = pb.declare("new_message");
    let module_app = pb.declare("module_app");
    let module_mac = pb.declare("module_mac");
    let module_phy = pb.declare("module_phy");
    let module_timer = pb.declare("module_timer");
    let write_log = pb.declare("write_log");

    {
        // The bottom wrapper: the program's only malloc site.
        let mut f = pb.define(msg_alloc);
        f.argc(1);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Middle wrapper: cMessage construction. Every message owns a
        // control-info payload allocated right behind it through the same
        // wrapper — the hot pair HALO can co-locate.
        // Message: [kind:8][time:8][src:8][payload:8][dst:8][pad..] = 56.
        // Payload: [bits:8][hops:8][tag:8][pad:8] = 32.
        let mut f = pb.define(new_message);
        f.argc(1);
        let kind = r(0);
        f.imm(r(2), 56);
        f.call(msg_alloc, &[r(2)], Some(r(1)));
        f.store(kind, r(1), 0, Width::W8);
        f.store(kind, r(1), 16, Width::W8);
        f.imm(r(2), 32);
        f.call(msg_alloc, &[r(2)], Some(r(3)));
        f.store(kind, r(3), 0, Width::W8);
        f.store(r(3), r(1), 24, Width::W8); // msg.payload
        f.ret(Some(r(1)));
        f.finish();
    }
    for (i, module) in [module_app, module_mac, module_phy].into_iter().enumerate() {
        let mut f = pb.define(module);
        f.imm(r(0), i as i64);
        f.call(new_message, &[r(0)], Some(r(1)));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Self-message timers: long-lived, rarely touched, allocated
        // straight through the bottom wrapper from their own context (no
        // payload). Their staggered frees punch holes into the baseline
        // allocator's message size class, scattering later waves; under
        // HALO this cold context stays ungrouped and cannot disturb the
        // message pool.
        let mut f = pb.define(module_timer);
        f.imm(r(2), 56);
        f.call(msg_alloc, &[r(2)], Some(r(1)));
        f.imm(r(3), 3);
        f.store(r(3), r(1), 0, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Event-log record: 32 bytes through the SAME wrapper chain —
        // the payload size class — written once and abandoned.
        let mut f = pb.define(write_log);
        f.argc(1);
        f.imm(r(2), 32);
        f.call(msg_alloc, &[r(2)], Some(r(1)));
        f.store(r(0), r(1), 0, Width::W8);
        f.ret(None);
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let waves = r(20);
    m.mov(waves, r(0));
    // Future-event-set: a pointer array holding one wave.
    m.imm(r(1), WAVE * 8);
    m.malloc(r(1), r(21));
    // Retention buffer: self-messages re-scheduled far into the future.
    // Their staggered lifetimes punch holes into the allocator's reuse
    // pattern, scattering later waves across the heap.
    m.imm(r(1), RETAIN * 8);
    m.calloc(r(1), r(2), r(28));
    m.imm(r(22), WAVE);
    m.imm(r(23), 3);
    m.imm(r(19), RETAIN);
    counted_loop(&mut m, r(24), waves, |m| {
        // Schedule a wave of messages from random modules.
        counted_loop(m, r(25), r(22), |m| {
            m.rand(r(1), r(23));
            let not_app = m.label();
            let not_mac = m.label();
            let scheduled = m.label();
            m.branch(Cond::Ne, r(1), ZERO, not_app);
            m.call(module_app, &[], Some(r(4)));
            m.jump(scheduled);
            m.bind(not_app);
            m.imm(r(2), 1);
            m.branch(Cond::Ne, r(1), r(2), not_mac);
            m.call(module_mac, &[], Some(r(4)));
            m.jump(scheduled);
            m.bind(not_mac);
            m.call(module_phy, &[], Some(r(4)));
            m.bind(scheduled);
            m.mul_imm(r(5), r(25), 8);
            m.add(r(5), r(21), r(5));
            m.store(r(4), r(5), 0, Width::W8);
        });
        // Process the wave: several handler passes touch every message,
        // each event emits a log record, then the wave is freed.
        m.imm(r(6), 3);
        counted_loop(m, r(7), r(6), |m| {
            counted_loop(m, r(26), r(22), |m| {
                m.mul_imm(r(5), r(26), 8);
                m.add(r(5), r(21), r(5));
                m.load(r(8), r(5), 0, Width::W8); // message
                m.load(r(9), r(8), 0, Width::W8); // kind
                m.load(r(10), r(8), 16, Width::W8); // src
                m.load(r(11), r(8), 24, Width::W8); // payload ptr
                m.load(r(12), r(11), 0, Width::W8); // payload.bits
                m.add(r(9), r(9), r(10));
                m.add(r(9), r(9), r(12));
                m.store(r(9), r(8), 32, Width::W8); // dst
                m.store(r(9), r(11), 8, Width::W8); // payload.hops
                m.compute(4);
            });
        });
        counted_loop(m, r(27), r(22), |m| {
            m.mul_imm(r(5), r(27), 8);
            m.add(r(5), r(21), r(5));
            m.load(r(8), r(5), 0, Width::W8);
            m.load(r(9), r(8), 32, Width::W8);
            m.call(write_log, &[r(9)], None);
            m.load(r(10), r(8), 24, Width::W8);
            m.free(r(10)); // payload
            m.free(r(8)); // message
        });
        // Timer churn: long-lived self-messages, each displacing (and
        // freeing) an older one at a random ring slot. Their staggered
        // lifetimes punch holes across the message size class.
        m.imm(r(13), 4);
        counted_loop(m, r(18), r(13), |m| {
            m.call(module_timer, &[], Some(r(14)));
            m.rand(r(15), r(19));
            m.mul_imm(r(15), r(15), 8);
            m.add(r(15), r(28), r(15));
            m.load(r(16), r(15), 0, Width::W8);
            m.store(r(14), r(15), 0, Width::W8);
            let none_old = m.label();
            m.branch(Cond::Eq, r(16), ZERO, none_old);
            m.free(r(16)); // displaced timer message
            m.bind(none_old);
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "omnetpp",
        program: pb.finish(main),
        train: RunSpec { seed: 555, arg: 80 },
        reference: RunSpec { seed: 666, arg: 800 },
        note: "message waves and log records all through one wrapper \
               chain; contexts (not sites) separate hot from cold",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn omnetpp_schedules_and_processes() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 100_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        let waves = w.train.arg as u64;
        // FES + timer ring + per wave: WAVE messages/payloads/logs plus
        // 4 payload-less timer messages.
        assert_eq!(stats.allocs, 2 + waves * (3 * WAVE as u64 + 4));
        // All wave traffic is freed; timers free on displacement only.
        assert!(stats.frees >= 2 * waves * WAVE as u64);
    }
}
