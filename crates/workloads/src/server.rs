//! `server`: a multi-threaded producer/consumer allocation storm.
//!
//! The ROADMAP's north star is a system serving heavy concurrent traffic,
//! and BOLT-style post-link optimisation pays off precisely on data-center
//! server workloads — which allocate on some threads and free on others.
//! This model encodes that malloc/free stream: three **producer** threads
//! each create sessions — a 32-byte header and a 32-byte payload, linked
//! through the header, with a cold 32-byte log record allocated *between*
//! them (the audit write every request handler performs). All three share
//! one size class, so the baseline's size-segregated placement interleaves
//! each session's hot pair with a cold record (the Fig. 1 pathology); two
//! **consumer** threads sweep every live session (touching the header and
//! then its payload — the affinity HALO should discover) and expire the
//! newest sessions, freeing memory another thread allocated. Logical
//! threads are announced with [`Op::ThreadSwitch`], so a thread-keyed
//! sharded allocator sees exactly the stream a native server would
//! produce, while the run stays single-engine deterministic.
//!
//! Producers outpace expiry (six sessions in, four out per round), so the
//! swept set grows and the sweep's locality — interleaved header/payload/
//! log classes under the baseline, per-session contiguity under HALO —
//! dominates the measured misses. Teardown returns to the main thread and
//! frees everything cross-thread: with a sharded backend every remaining
//! free lands on a remote queue.
//!
//! [`Op::ThreadSwitch`]: halo_vm::Op::ThreadSwitch

use crate::util::{counted_loop, r, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

/// Producer logical threads 1..=PRODUCERS.
const PRODUCERS: u16 = 3;
/// Consumer logical threads PRODUCERS+1..=PRODUCERS+CONSUMERS.
const CONSUMERS: u16 = 2;

/// Build the server workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let make_header = pb.declare("make_header");
    let make_payload = pb.declare("make_payload");
    let make_log = pb.declare("make_log");
    let produce = pb.declare("produce");
    let log_append = pb.declare("log_append");
    let sweep_sessions = pb.declare("sweep_sessions");
    let expire = pb.declare("expire");

    {
        // Session header: [next:8][payload:8][tag:8][pad:8] = 32.
        let mut f = pb.define(make_header);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Session payload: 32 bytes of request state — deliberately the
        // header's size class, as small request/state pairs are.
        let mut f = pb.define(make_payload);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Cold log record: 32 bytes, written once, read never — and in
        // the same size class as the hot pair, so the baseline interleaves
        // it between them.
        let mut f = pb.define(make_log);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // produce(session_list_cell, log_list_cell): allocate the header,
        // emit the audit log record (cold, between the hot pair in
        // allocation order), then the payload; link payload into header
        // and push the header onto the shared session list.
        let mut f = pb.define(produce);
        f.argc(2);
        f.call(make_header, &[], Some(r(10)));
        f.call(log_append, &[r(1)], None);
        f.call(make_payload, &[], Some(r(11)));
        f.store(r(11), r(10), 8, Width::W8); // header.payload
        f.imm(r(3), 7);
        f.store(r(3), r(10), 16, Width::W8); // header.tag
        f.store(r(3), r(11), 0, Width::W8); // payload state
        f.store(r(3), r(11), 24, Width::W8);
        f.load(r(12), r(0), 0, Width::W8); // old head
        f.store(r(12), r(10), 0, Width::W8); // header.next
        f.store(r(10), r(0), 0, Width::W8); // *cell = header
        f.ret(None);
        f.finish();
    }
    {
        // log_append(log_list_cell): one cold record onto the log list.
        let mut f = pb.define(log_append);
        f.argc(1);
        f.call(make_log, &[], Some(r(10)));
        f.imm(r(3), 1);
        f.store(r(3), r(10), 8, Width::W8);
        f.load(r(12), r(0), 0, Width::W8);
        f.store(r(12), r(10), 0, Width::W8);
        f.store(r(10), r(0), 0, Width::W8);
        f.ret(None);
        f.finish();
    }
    {
        // sweep_sessions(session_list_cell) -> checksum: the hot path.
        // Touch each header (tag), chase to its payload, touch two words.
        let mut f = pb.define(sweep_sessions);
        f.argc(1);
        f.imm(r(7), 0);
        f.load(r(10), r(0), 0, Width::W8);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.branch(Cond::Eq, r(10), ZERO, done);
        f.load(r(4), r(10), 16, Width::W8); // header.tag
        f.load(r(11), r(10), 8, Width::W8); // header.payload
        f.load(r(5), r(11), 0, Width::W8); // payload words
        f.load(r(6), r(11), 24, Width::W8);
        f.add(r(7), r(7), r(4));
        f.add(r(7), r(7), r(5));
        f.add(r(7), r(7), r(6));
        f.load(r(10), r(10), 0, Width::W8); // next header
        f.jump(top);
        f.bind(done);
        f.ret(Some(r(7)));
        f.finish();
    }
    {
        // expire(session_list_cell): pop the newest session and free both
        // its objects — on a consumer thread, i.e. remotely.
        let mut f = pb.define(expire);
        f.argc(1);
        f.load(r(10), r(0), 0, Width::W8);
        let empty = f.label();
        f.branch(Cond::Eq, r(10), ZERO, empty);
        f.load(r(12), r(10), 0, Width::W8); // next
        f.store(r(12), r(0), 0, Width::W8);
        f.load(r(11), r(10), 8, Width::W8); // payload
        f.free(r(11));
        f.free(r(10));
        f.bind(empty);
        f.ret(None);
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let rounds = r(20);
    m.mov(rounds, r(0));
    // Shared cells: session-list head and log-list head (main thread).
    m.imm(r(1), 16);
    m.malloc(r(1), r(21)); // session list cell
    m.malloc(r(1), r(22)); // log list cell
    m.store(ZERO, r(21), 0, Width::W8);
    m.store(ZERO, r(22), 0, Width::W8);
    counted_loop(&mut m, r(23), rounds, |m| {
        // Producers: two sessions each (each session also logs).
        for p in 1..=PRODUCERS {
            m.thread_switch(p);
            m.call(produce, &[r(21), r(22)], None);
            m.call(produce, &[r(21), r(22)], None);
        }
        // Consumers: sweep every live session, then expire two each.
        for c in 1..=CONSUMERS {
            m.thread_switch(PRODUCERS + c);
            m.call(sweep_sessions, &[r(21)], Some(r(24)));
            m.call(expire, &[r(21)], None);
            m.call(expire, &[r(21)], None);
        }
    });
    // Teardown on the main thread: every remaining free is cross-thread.
    m.thread_switch(0);
    m.load(r(25), r(21), 0, Width::W8);
    {
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Eq, r(25), ZERO, done);
        m.load(r(26), r(25), 0, Width::W8); // next
        m.load(r(11), r(25), 8, Width::W8); // payload
        m.free(r(11));
        m.free(r(25));
        m.mov(r(25), r(26));
        m.jump(top);
        m.bind(done);
    }
    m.load(r(25), r(22), 0, Width::W8);
    {
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Eq, r(25), ZERO, done);
        m.load(r(26), r(25), 0, Width::W8);
        m.free(r(25));
        m.mov(r(25), r(26));
        m.jump(top);
        m.bind(done);
    }
    m.free(r(21));
    m.free(r(22));
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "server",
        program: pb.finish(main),
        train: RunSpec { seed: 4242, arg: 200 },
        reference: RunSpec { seed: 4343, arg: 800 },
        note: "producer/consumer storm across 5 logical threads; consumers \
               free memory producers allocated",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn server_produces_consumes_and_drains() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        let rounds = w.train.arg as u64;
        // 2 cells + per round: 6 sessions (header + log + payload each).
        assert_eq!(stats.allocs, 2 + rounds * 18);
        // Everything allocated is freed by teardown.
        assert_eq!(stats.frees, stats.allocs, "the server drains completely");
    }

    #[test]
    fn server_marks_its_logical_threads() {
        use halo_vm::Monitor;
        struct Threads(Vec<u16>);
        impl Monitor for Threads {
            fn on_thread_switch(&mut self, t: u16) {
                if self.0.last() != Some(&t) {
                    self.0.push(t);
                }
            }
        }
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let mut mon = Threads(Vec::new());
        Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(2)
            .run(&mut alloc, &mut mon)
            .expect("runs");
        // Round shape: producers 1..=3, consumers 4..=5, repeated; final 0.
        assert_eq!(&mon.0[..5], &[1, 2, 3, 4, 5]);
        assert_eq!(mon.0.last(), Some(&0), "teardown runs on the main thread");
    }
}
