//! `xalanc` (SPEC CPU2017): XSLT processor.
//!
//! "xalanc displays significant indirection [in] its call chains, requiring
//! the traversal of tens of stack frames to properly appreciate the context
//! in which allocations have been made" (§5.2). The model routes every
//! node allocation through a ten-deep parse chain — including an indirect
//! call and an indirect dispatch shared by all node kinds — into a memory-
//! manager wrapper with the program's single malloc site. Only deep
//! context distinguishes element, attribute, and text allocations; the
//! paper reports HALO's best CPU2017 speedup here (~16%).

use crate::util::{counted_loop, list_push, r, walk_list, ZERO};
use crate::{RunSpec, Workload};
use halo_vm::{Cond, ProgramBuilder, Width};

const PARSE_DEPTH: usize = 10;
const TRANSFORM_PASSES: i64 = 12;

/// Build the xalanc workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let xalan_alloc = pb.declare("xalan_alloc");
    let create_elem = pb.declare("create_elem");
    let create_attr = pb.declare("create_attr");
    let create_text = pb.declare("create_text");
    let parse: Vec<_> = (0..PARSE_DEPTH).map(|i| pb.declare(&format!("parse{i}"))).collect();

    {
        // The memory manager: one malloc site for every node kind.
        let mut f = pb.define(xalan_alloc);
        f.argc(1);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Element: [next:8][tag:8][attrs:8][text:8][ns:8][pad] = 48.
        let mut f = pb.define(create_elem);
        f.argc(1);
        f.imm(r(2), 48);
        f.call(xalan_alloc, &[r(2)], Some(r(1)));
        f.imm(r(3), 5);
        f.store(r(3), r(1), 8, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Attribute: [next:8][value:8][norm:8][pad:8] = 32; linked onto the
        // parent element passed down the parse chain.
        let mut f = pb.define(create_attr);
        f.argc(1);
        let parent = r(0);
        f.imm(r(2), 32);
        f.call(xalan_alloc, &[r(2)], Some(r(1)));
        f.imm(r(3), 2);
        f.store(r(3), r(1), 8, Width::W8); // value
        f.load(r(4), parent, 16, Width::W8); // parent.attrs
        f.store(r(4), r(1), 0, Width::W8); // attr.next
        f.store(r(1), parent, 16, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Text node: 32 bytes (attribute size class), written once.
        let mut f = pb.define(create_text);
        f.argc(1);
        f.imm(r(2), 32);
        f.call(xalan_alloc, &[r(2)], Some(r(1)));
        f.imm(r(3), 1);
        f.store(r(3), r(1), 8, Width::W8);
        f.ret(Some(r(1)));
        f.finish();
    }

    // The parse chain: parse_i(kind_fn, parent) forwards to parse_{i+1};
    // the middle hop is an *indirect* call (a register-held target), and
    // the bottom dispatches indirectly through the kind function id — both
    // call sites are shared by every node kind.
    for i in 0..PARSE_DEPTH {
        let mut f = pb.define(parse[i]);
        f.argc(2); // r0 = kind function id, r1 = parent
        if i + 1 < PARSE_DEPTH {
            if i == PARSE_DEPTH / 2 {
                // Indirect hop to the next parse level.
                f.imm(r(2), parse[i + 1].0 as i64);
                f.call_indirect(r(2), &[r(0), r(1)], Some(r(3)));
            } else {
                f.call(parse[i + 1], &[r(0), r(1)], Some(r(3)));
            }
        } else {
            // Bottom: dispatch on the kind function id.
            f.call_indirect(r(0), &[r(1)], Some(r(3)));
        }
        f.ret(Some(r(3)));
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let elements = r(20);
    m.mov(elements, r(0));
    let dom = r(9);
    m.imm(dom, 0);
    m.imm(r(21), create_elem.0 as i64);
    m.imm(r(22), create_attr.0 as i64);
    m.imm(r(23), create_text.0 as i64);
    // Parse: element + two attributes + one text node each.
    counted_loop(&mut m, r(24), elements, |m| {
        m.imm(r(2), 0);
        m.call(parse[0], &[r(21), r(2)], Some(r(3))); // element
        list_push(m, dom, r(3));
        m.call(parse[0], &[r(22), r(3)], Some(r(4))); // attr 1
        m.call(parse[0], &[r(22), r(3)], Some(r(4))); // attr 2
        m.call(parse[0], &[r(23), r(3)], Some(r(5))); // text (cold)
    });
    // Transform: walk the DOM, normalising attributes.
    m.imm(r(25), TRANSFORM_PASSES);
    counted_loop(&mut m, r(26), r(25), |m| {
        walk_list(m, dom, r(6), |m| {
            m.load(r(1), r(6), 8, Width::W8); // tag
            m.load(r(2), r(6), 16, Width::W8); // attr head
            let top = m.label();
            let done = m.label();
            m.bind(top);
            m.branch(Cond::Eq, r(2), ZERO, done);
            m.load(r(3), r(2), 8, Width::W8); // attr.value
            m.add(r(3), r(3), r(1));
            m.store(r(3), r(2), 16, Width::W8); // attr.norm
            m.load(r(2), r(2), 0, Width::W8);
            m.jump(top);
            m.bind(done);
        });
    });
    m.ret(None);
    let main = m.finish();

    Workload {
        name: "xalanc",
        program: pb.finish(main),
        train: RunSpec { seed: 777, arg: 500 },
        reference: RunSpec { seed: 888, arg: 5000 },
        note: "ten-deep parse chain with indirect calls into a single-site \
               memory manager; only deep context separates node kinds",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, NullMonitor};

    #[test]
    fn xalanc_parses_deep_and_transforms() {
        let w = build();
        let mut alloc = MallocOnlyAllocator::new();
        let stats = Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(EngineLimits { max_instructions: 200_000_000, max_call_depth: 64 })
            .run(&mut alloc, &mut NullMonitor)
            .expect("runs");
        assert_eq!(stats.allocs, 4 * w.train.arg as u64);
        assert!(stats.max_depth > PARSE_DEPTH, "deep call chains");
    }
}
