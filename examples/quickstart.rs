//! Quickstart: the paper's Figure 2 program, optimised end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the motivating workload (a token loop allocating three object
//! types, then a traversal touching only two of them), runs the full HALO
//! pipeline — profile → group → identify → rewrite → synthesise — and
//! compares L1D misses and simulated time against the jemalloc-style
//! baseline.

use halo::core::{measure, Halo, HaloConfig, MeasureConfig};
use halo::mem::SizeClassAllocator;
use halo::workloads::toy;

fn main() {
    let workload = toy::build();
    println!("workload: {} — {}", workload.name, workload.note);

    // 1. The pipeline: profile on the small train input, then group,
    //    identify, and rewrite.
    let halo = Halo::new(HaloConfig::default());
    let optimised = halo
        .optimise_with_arg(&workload.program, workload.train.seed, workload.train.arg)
        .expect("pipeline runs");
    println!(
        "\nprofile: {} contexts ({} retained), {} affinity edges",
        optimised.profile.contexts.len(),
        optimised.profile.alive_contexts().count(),
        optimised.profile.graph.edge_count(),
    );
    for group in &optimised.groups {
        let members: Vec<&str> =
            group.members.iter().map(|&m| optimised.profile.context(m).name.as_str()).collect();
        println!("group (weight {}): {:?}", group.weight, members);
    }
    println!(
        "identification: {} monitored call sites; rewriting added {} instructions",
        optimised.ident.site_bits.len(),
        optimised.rewrite.instructions_added,
    );

    // 2. Measure on the larger ref input: baseline vs HALO.
    let measure_cfg = MeasureConfig {
        seed: workload.reference.seed,
        entry_arg: workload.reference.arg,
        ..MeasureConfig::default()
    };
    let mut baseline_alloc = SizeClassAllocator::new();
    let baseline =
        measure(&workload.program, &mut baseline_alloc, &measure_cfg).expect("baseline runs");
    let mut halo_alloc = halo.make_allocator(&optimised);
    let optimised_run =
        measure(&optimised.program, &mut halo_alloc, &measure_cfg).expect("optimised runs");

    println!("\n{:<12} {:>14} {:>14}", "", "baseline", "HALO");
    println!(
        "{:<12} {:>14} {:>14}",
        "L1D misses", baseline.stats.l1_misses, optimised_run.stats.l1_misses
    );
    println!(
        "{:<12} {:>14.2} {:>14.2}",
        "Mcycles",
        baseline.cycles / 1e6,
        optimised_run.cycles / 1e6
    );
    println!(
        "\nmiss reduction: {:.1}%   speedup: {:.1}%",
        optimised_run.miss_reduction_vs(&baseline) * 100.0,
        optimised_run.speedup_vs(&baseline) * 100.0,
    );
    let stats = halo_alloc.stats();
    println!(
        "allocator: {} grouped, {} fell back to the default allocator",
        stats.grouped_allocs, stats.fallback_allocs
    );
}
