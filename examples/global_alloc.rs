//! The native runtime: HALO's synthesised allocator design running on real
//! memory as this process's `#[global_allocator]`.
//!
//! ```text
//! cargo run --release --example global_alloc
//! ```
//!
//! In the paper, BOLT inserts instructions that set/clear group-state bits
//! around monitored call sites, and the synthesised allocator interposes on
//! malloc. Natively, [`halo::mem::rt::SiteGuard`]s play the instrumentation
//! role and [`halo::mem::rt::GroupHeap`] the allocator's: allocations made
//! while a matching guard is held are bump-packed into group chunks;
//! everything else goes to the system allocator.

use halo::mem::rt::{enter_site, GroupHeap, NativeSelector};

// Two groups: "geometry" behind monitored site 0, "index nodes" behind
// monitored sites 1 AND 2 together (a conjunctive selector).
static SELECTORS: &[NativeSelector] =
    &[NativeSelector { group: 0, masks: &[0b001] }, NativeSelector { group: 1, masks: &[0b110] }];

#[global_allocator]
static HEAP: GroupHeap = GroupHeap::new(SELECTORS);

fn addr<T>(r: &T) -> usize {
    r as *const T as usize
}

fn main() {
    // Ordinary allocations (no guard): system allocator, scattered.
    let plain: Vec<Box<[u64; 4]>> = (0..4).map(|i| Box::new([i; 4])).collect();

    // Geometry allocations inside monitored site 0: bump-packed together.
    let geometry: Vec<Box<[u64; 4]>> = {
        let _site = enter_site(0);
        (0..4).map(|i| Box::new([i; 4])).collect()
    };

    // Index nodes need both site 1 and site 2 on the stack (selector
    // `bit1 ∧ bit2`), mirroring a two-level calling context.
    let index: Vec<Box<[u64; 4]>> = {
        let _outer = enter_site(1);
        let _inner = enter_site(2);
        (0..4).map(|i| Box::new([i; 4])).collect()
    };

    // With only one of the two bits set, the selector must NOT match.
    let unmatched: Box<[u64; 4]> = {
        let _outer = enter_site(1);
        Box::new([9; 4])
    };

    println!("plain (system allocator):");
    for b in &plain {
        println!("  {:#x}", addr(&**b));
    }
    println!("geometry (group 0 chunk — note the contiguous 32-byte steps):");
    for b in &geometry {
        println!("  {:#x}", addr(&**b));
    }
    println!("index nodes (group 1 chunk):");
    for b in &index {
        println!("  {:#x}", addr(&**b));
    }
    println!("partial context (falls back to system): {:#x}", addr(&*unmatched));

    // Demonstrate the contiguity guarantee programmatically.
    let step = addr(&*geometry[1]) - addr(&*geometry[0]);
    assert_eq!(step, 32, "grouped allocations are bump-contiguous");
    let g0_chunk = addr(&*geometry[0]) & !(halo::mem::rt::CHUNK_SIZE - 1);
    let g1_chunk = addr(&*index[0]) & !(halo::mem::rt::CHUNK_SIZE - 1);
    assert_ne!(g0_chunk, g1_chunk, "groups live in separate chunks");
    println!("\nok: groups are contiguous and segregated ({} live chunks)", HEAP.chunk_count());
}
