//! Bring your own program: build a simulated binary with the assembler,
//! then let HALO optimise it.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The program models a simple order-matching engine: orders and fills are
//! allocated from separate helpers as requests arrive (interleaved with
//! audit records that are written once), and the settlement loop then walks
//! orders and their fills together. Exactly the shape HALO exists for.

use halo::core::{measure, Halo, HaloConfig, MeasureConfig};
use halo::mem::SizeClassAllocator;
use halo::vm::{Cond, ProgramBuilder, Reg, Width};

fn build_program() -> halo::vm::Program {
    let r = Reg;
    let mut pb = ProgramBuilder::new();
    let new_order = pb.declare("new_order");
    let new_fill = pb.declare("new_fill");
    let audit = pb.declare("audit");

    {
        // Order: [next:8][qty:8][px:8][fill:8][flags:8] = 40.
        let mut f = pb.define(new_order);
        f.imm(r(0), 40);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Fill: [qty:8][px:8][ts:8] = 24.
        let mut f = pb.define(new_fill);
        f.imm(r(0), 24);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
    }
    {
        // Audit record: 40 bytes (the order size class), written once.
        let mut f = pb.define(audit);
        f.argc(1);
        f.imm(r(2), 40);
        f.malloc(r(2), r(1));
        f.store(r(0), r(1), 0, Width::W8);
        f.ret(None);
        f.finish();
    }

    let mut m = pb.function("main");
    m.argc(1);
    let n = r(20);
    m.mov(n, r(0));
    let book = r(9);
    m.imm(book, 0);
    // Intake: order + fill + audit per request.
    m.imm(r(21), 0);
    let top = m.label();
    let done = m.label();
    m.bind(top);
    m.branch(Cond::Ge, r(21), n, done);
    m.call(new_order, &[], Some(r(1)));
    m.call(new_fill, &[], Some(r(2)));
    m.store(r(2), r(1), 24, Width::W8); // order.fill
    m.store(r(21), r(2), 0, Width::W8); // fill.qty
    m.store(book, r(1), 0, Width::W8); // order.next
    m.mov(book, r(1));
    m.call(audit, &[r(21)], None);
    m.add_imm(r(21), r(21), 1);
    m.jump(top);
    m.bind(done);
    // Settlement: twelve passes over the book, touching order + fill.
    m.imm(r(22), 0);
    m.imm(r(23), 12);
    let sweep = m.label();
    let sdone = m.label();
    m.bind(sweep);
    m.branch(Cond::Ge, r(22), r(23), sdone);
    m.mov(r(5), book);
    let walk = m.label();
    let wdone = m.label();
    m.bind(walk);
    m.branch(Cond::Eq, r(5), r(31), wdone);
    m.load(r(6), r(5), 24, Width::W8); // fill ptr
    m.load(r(7), r(6), 0, Width::W8); // fill.qty
    m.store(r(7), r(5), 8, Width::W8); // order.qty
    m.load(r(5), r(5), 0, Width::W8); // next order
    m.jump(walk);
    m.bind(wdone);
    m.add_imm(r(22), r(22), 1);
    m.jump(sweep);
    m.bind(sdone);
    m.ret(None);
    let main = m.finish();
    pb.finish(main)
}

fn main() {
    let program = build_program();
    let halo = Halo::new(HaloConfig::default());
    // Profile at small scale...
    let optimised = halo.optimise_with_arg(&program, 1, 500).expect("pipeline runs");
    println!("groups found:");
    for g in &optimised.groups {
        let names: Vec<&str> =
            g.members.iter().map(|&m| optimised.profile.context(m).name.as_str()).collect();
        println!("  weight {}: {names:?}", g.weight);
    }
    // ...measure at 10× scale.
    let cfg = MeasureConfig { seed: 2, entry_arg: 5000, ..MeasureConfig::default() };
    let mut base_alloc = SizeClassAllocator::new();
    let base = measure(&program, &mut base_alloc, &cfg).expect("baseline");
    let mut halo_alloc = halo.make_allocator(&optimised);
    let opt = measure(&optimised.program, &mut halo_alloc, &cfg).expect("optimised");
    println!("\nbaseline: {} L1D misses, {:.2} Mcycles", base.stats.l1_misses, base.cycles / 1e6);
    println!("HALO:     {} L1D misses, {:.2} Mcycles", opt.stats.l1_misses, opt.cycles / 1e6);
    println!(
        "miss reduction {:.1}%, speedup {:.1}%",
        opt.miss_reduction_vs(&base) * 100.0,
        opt.speedup_vs(&base) * 100.0
    );
}
