//! The §3 case study: povray's allocation-wrapper pattern.
//!
//! ```text
//! cargo run --release --example povray_pipeline
//! ```
//!
//! Runs both HALO and the hot-data-streams comparison technique on the
//! povray model, showing why full-context identification pierces the
//! `pov_malloc` wrapper while immediate-call-site identification cannot
//! (the technique finds nothing it can act on).

use halo::core::{evaluate_with_arg, EvalConfig, HaloConfig};
use halo::graph::GroupingParams;
use halo::workloads::povray;

fn main() {
    let workload = povray::build();
    println!("workload: {} — {}", workload.name, workload.note);

    let config = EvalConfig {
        halo: HaloConfig {
            grouping: GroupingParams { min_weight: 32, ..Default::default() },
            ..HaloConfig::default()
        },
        ..EvalConfig::default()
    };
    let mut config = config;
    config.measure.seed = workload.reference.seed;
    config.measure.entry_arg = workload.reference.arg;

    let result = evaluate_with_arg(
        &workload.program,
        workload.name,
        workload.train.seed,
        workload.train.arg,
        &config,
    )
    .expect("evaluation runs");

    println!("\n--- HALO (full-context identification) ---");
    for (gi, group) in result.optimised.groups.iter().enumerate() {
        let members: Vec<&str> = group
            .members
            .iter()
            .map(|&m| result.optimised.profile.context(m).name.as_str())
            .collect();
        println!("group {gi}: {members:?}");
    }
    println!(
        "monitored sites: {}  (the wrapper-internal malloc site is useless,\n\
         so selectors key on the create_* call sites instead)",
        result.optimised.ident.site_bits.len()
    );

    println!("\n--- hot data streams (immediate-call-site identification) ---");
    println!(
        "hot streams: {}  co-allocation sets surviving the benefit model: {}",
        result.hds_analysis.stats.hot_streams, result.hds_analysis.stats.beneficial_sets
    );
    println!(
        "site groups: {} (every allocation shares pov_malloc's one site, so\n\
         pooling it would reproduce the original layout — the analysis\n\
         projects no gain and emits nothing)",
        result.hds_analysis.site_groups.len()
    );

    let (hds_mr, halo_mr) = result.miss_reduction_row();
    let (hds_su, halo_su) = result.speedup_row();
    println!("\n{:<22} {:>10} {:>10}", "", "HDS", "HALO");
    println!("{:<22} {:>9.1}% {:>9.1}%", "L1D miss reduction", hds_mr * 100.0, halo_mr * 100.0);
    println!("{:<22} {:>9.1}% {:>9.1}%", "speedup", hds_su * 100.0, halo_su * 100.0);
    println!(
        "\n(povray is compute-bound: HALO removes misses but the render loop's\n\
         arithmetic dominates simulated time, as in the paper's Figs. 13/14)"
    );
}
