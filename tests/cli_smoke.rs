//! Smoke tests for the `halo` binary's argument parsing and output
//! framing, driving the real executable (libtest exposes its path as
//! `CARGO_BIN_EXE_halo`). The heavyweight evaluation paths are covered by
//! `pipeline_end_to_end.rs`; here we only run cheap workloads (`toy`,
//! plus `povray`/`analyzer` in the parallel-plot determinism check).

use std::process::{Command, Output};

fn halo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_halo"))
        .args(args)
        .output()
        .expect("the halo binary must spawn")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8")
}

#[test]
fn list_names_every_workload() {
    let out = halo(&["list"]);
    assert!(out.status.success(), "halo list failed: {}", stderr(&out));
    let text = stdout(&out);
    let workloads = halo::workloads::all();
    assert_eq!(workloads.len(), 11, "the paper evaluates 11 benchmarks");
    for w in &workloads {
        assert!(text.contains(w.name), "halo list is missing workload {:?}:\n{text}", w.name);
    }
}

#[test]
fn run_toy_json_emits_machine_readable_row() {
    let out = halo(&["run", "--benchmark", "toy", "--json"]);
    assert!(out.status.success(), "halo run failed: {}", stderr(&out));
    let text = stdout(&out);
    let line = text.lines().next().expect("one JSON row");
    // Keep the format check structural, not value-exact: one object per
    // line with the three result sections and the headline metrics.
    assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
    for key in [
        "\"benchmark\":\"toy\"",
        "\"halo\":",
        "\"hds\":",
        "\"baseline\":",
        "\"miss_reduction\":",
        "\"speedup\":",
        "\"groups\":",
        "\"coherence\":{\"threads\":1,",
        "\"invalidations\":0",
    ] {
        assert!(line.contains(key), "JSON row is missing {key}: {line}");
    }
}

#[test]
fn run_accepts_the_paper_flags() {
    let out = halo(&[
        "run",
        "--benchmark",
        "toy",
        "--affinity-distance",
        "256",
        "--chunk-size",
        "65536",
        "--max-spare-chunks",
        "inf",
        "--max-groups",
        "4",
        "--merge-tolerance",
        "0.1",
        "--json",
    ]);
    assert!(out.status.success(), "flagged run failed: {}", stderr(&out));
    assert!(stdout(&out).contains("\"benchmark\":\"toy\""));
}

#[test]
fn run_accepts_and_reports_granularity() {
    for granularity in ["object", "page", "auto"] {
        let out = halo(&["run", "--benchmark", "toy", "--granularity", granularity, "--json"]);
        assert!(out.status.success(), "--granularity {granularity} failed: {}", stderr(&out));
        let text = stdout(&out);
        assert!(
            text.contains("\"granularity\":"),
            "JSON row must report the resolved granularity: {text}"
        );
        assert!(text.contains("\"auto_declined\":"), "JSON row must report the policy: {text}");
    }
    let bad = halo(&["run", "--benchmark", "toy", "--granularity", "bogus"]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("unknown granularity 'bogus'"), "{}", stderr(&bad));
}

#[test]
fn run_accepts_and_reports_reuse_policy() {
    for policy in ["bump", "sharded", "auto"] {
        let out = halo(&["run", "--benchmark", "toy", "--reuse-policy", policy, "--json"]);
        assert!(out.status.success(), "--reuse-policy {policy} failed: {}", stderr(&out));
        let text = stdout(&out);
        for key in ["\"frag_fraction\":", "\"wasted_bytes\":", "\"plans\":["] {
            assert!(text.contains(key), "JSON row is missing {key}: {text}");
        }
        // The plan summary carries the per-group knobs.
        for key in ["\"reuse\":", "\"chunk_size\":", "\"max_spare_chunks\":"] {
            assert!(text.contains(key), "plan summary is missing {key}: {text}");
        }
    }
    // An explicit sharded choice must surface in the resolved plans.
    let sharded = halo(&["run", "--benchmark", "toy", "--reuse-policy", "sharded", "--json"]);
    assert!(stdout(&sharded).contains("\"reuse\":\"sharded\""), "{}", stdout(&sharded));
    let bad = halo(&["run", "--benchmark", "toy", "--reuse-policy", "meshing"]);
    assert!(!bad.status.success());
    assert!(
        stderr(&bad).contains("unknown reuse policy 'meshing' (bump|sharded|auto)"),
        "{}",
        stderr(&bad)
    );
}

#[test]
fn reuse_policy_parse_errors_reach_stderr_with_failure_exit() {
    // The "clear parse error" contract: a bad value or a missing value
    // must fail the process (non-zero exit) and say what was wrong on
    // stderr — on every subcommand that accepts the flag, not just `run`.
    for command in ["run", "plot"] {
        let bad = halo(&[command, "--benchmark", "toy", "--reuse-policy", "meshing"]);
        assert!(!bad.status.success(), "halo {command} must reject a bad reuse policy");
        assert_eq!(bad.stdout.len(), 0, "no result rows before the error ({command})");
        let err = stderr(&bad);
        assert!(
            err.contains("unknown reuse policy 'meshing' (bump|sharded|auto)"),
            "halo {command} parse error must name the value and the choices: {err}"
        );
    }
    let missing = halo(&["run", "--benchmark", "toy", "--reuse-policy"]);
    assert!(!missing.status.success());
    assert!(stderr(&missing).contains("--reuse-policy needs a value"), "{}", stderr(&missing));
}

#[test]
fn shards_flag_enables_the_sharded_backend() {
    let out = halo(&["run", "--benchmark", "toy", "--shards", "2", "--json"]);
    assert!(out.status.success(), "halo run --shards failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("\"halo-sharded\":{"),
        "JSON row must carry the sharded backend's results: {text}"
    );
    for key in ["\"l1d_misses\":", "\"miss_reduction\":", "\"speedup\":"] {
        assert!(text.contains(key), "sharded JSON section is missing {key}: {text}");
    }
    // The sharded runtime's remote-free queue pressure is part of the row.
    assert!(
        text.contains("\"remote_free\":{\"pushes\":"),
        "JSON row must carry remote-free queue counters: {text}"
    );
    for key in ["\"drained\":", "\"max_queue_depth\":"] {
        assert!(text.contains(key), "remote_free section is missing {key}: {text}");
    }
    // Without the flag the backend stays off.
    let plain = halo(&["run", "--benchmark", "toy", "--json"]);
    assert!(!stdout(&plain).contains("halo-sharded"), "{}", stdout(&plain));
    assert!(
        !stdout(&plain).contains("\"remote_free\""),
        "remote_free must only appear when a sharded backend ran: {}",
        stdout(&plain)
    );
    // Invalid counts are clear parse errors.
    let zero = halo(&["run", "--benchmark", "toy", "--shards", "0"]);
    assert!(!zero.status.success());
    assert!(stderr(&zero).contains("--shards must be at least 1"), "{}", stderr(&zero));
    let junk = halo(&["run", "--benchmark", "toy", "--shards", "many"]);
    assert!(!junk.status.success());
    assert!(stderr(&junk).contains("invalid shard count 'many'"), "{}", stderr(&junk));
    // Beyond the address layout's bound: a clear parse error, not a
    // panic out of the allocator constructor.
    let huge = halo(&["run", "--benchmark", "toy", "--shards", "25"]);
    assert!(!huge.status.success());
    assert!(
        stderr(&huge).contains("--shards 25 exceeds the address layout's limit"),
        "{}",
        stderr(&huge)
    );
}

#[test]
fn bench_rejects_run_configuration_flags() {
    let out = halo(&["bench", "--reuse-policy", "sharded"]);
    assert!(!out.status.success(), "bench must reject run-configuration flags");
    assert!(stderr(&out).contains("halo bench only accepts"), "{}", stderr(&out));
    let sharded = halo(&["bench", "--shards", "4"]);
    assert!(!sharded.status.success(), "bench must reject --shards");
    assert!(stderr(&sharded).contains("halo bench only accepts"), "{}", stderr(&sharded));
    let real = halo(&["bench", "--measure", "real"]);
    assert!(!real.status.success(), "bench must reject --measure real");
    assert!(stderr(&real).contains("halo bench only accepts"), "{}", stderr(&real));
    let inject = halo(&["bench", "--inject", "vmm@1"]);
    assert!(!inject.status.success(), "bench must reject --inject");
    assert!(stderr(&inject).contains("halo bench only accepts"), "{}", stderr(&inject));
}

#[test]
fn inject_surfaces_the_degradation_ladder() {
    // An exact-occurrence schedule fires deterministically; the JSON row
    // gains a `degradation` section whose counters show the fault was
    // absorbed (routed to fallback), not fatal.
    let out = halo(&["run", "--benchmark", "toy", "--inject", "seed=7,vmm@1", "--json"]);
    assert!(out.status.success(), "an injected fault must not fail the run: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains(",\"degradation\":{\"backends\":["),
        "missing degradation section: {text}"
    );
    assert!(
        text.contains("\"id\":\"halo\",\"injected_faults\":1"),
        "fault must be counted: {text}"
    );
    for key in [
        "\"fallback_routes\":",
        "\"degraded_groups\":1",
        "\"degraded_shards\":0",
        "\"queue_overflows\":",
        "\"poisoned_recovered\":",
        "\"invalid_frees\":",
    ] {
        assert!(text.contains(key), "degradation section is missing {key}: {text}");
    }
    // Replaying the same schedule is deterministic, byte for byte.
    let again = halo(&["run", "--benchmark", "toy", "--inject", "seed=7,vmm@1", "--json"]);
    assert_eq!(text, stdout(&again), "fault replay must be deterministic");
    // Text mode prints the ladder's summary line under the same gate.
    let human = halo(&["run", "--benchmark", "toy", "--inject", "seed=7,vmm@1"]);
    assert!(human.status.success());
    let human = stdout(&human);
    assert!(
        human.contains("degradation (halo): 1 injected,"),
        "text mode must summarise the ladder: {human}"
    );
    // An empty plan attaches an injector but changes nothing observable:
    // identical to an uninjected run except the (all-zero) report.
    let clean = halo(&["run", "--benchmark", "toy", "--inject", "seed=7", "--json"]);
    assert!(stdout(&clean).contains("\"id\":\"halo\",\"injected_faults\":0"), "{}", stdout(&clean));
    // Fault-free runs carry no degradation output at all.
    let plain = halo(&["run", "--benchmark", "toy", "--json"]);
    assert!(!stdout(&plain).contains("degradation"), "{}", stdout(&plain));
}

#[test]
fn inject_parse_errors_reach_stderr_with_failure_exit() {
    for (spec, needle) in [
        ("bogus@1", "unknown fault site 'bogus' (vmm|chunk|queue|panic)"),
        ("vmm@0", "occurrence in 'vmm@0' is 1-based"),
        ("queue~1.5", "rate in 'queue~1.5' must be within [0, 1]"),
        ("vmm", "malformed fault entry 'vmm'"),
        ("seed=abc", "invalid fault seed 'abc'"),
    ] {
        let out = halo(&["run", "--benchmark", "toy", "--inject", spec]);
        assert!(!out.status.success(), "halo run must reject --inject {spec}");
        assert_eq!(out.stdout.len(), 0, "no result rows before the error ({spec})");
        assert!(stderr(&out).contains(needle), "for {spec}: {}", stderr(&out));
    }
    let missing = halo(&["run", "--benchmark", "toy", "--inject"]);
    assert!(!missing.status.success());
    assert!(stderr(&missing).contains("--inject needs a value"), "{}", stderr(&missing));
    // Wall-clock mode has no degradation report; the combination is a
    // clear error rather than a silently degraded measurement.
    let real = halo(&["run", "--benchmark", "toy", "--inject", "vmm@1", "--measure", "real"]);
    assert!(!real.status.success());
    assert!(stderr(&real).contains("--inject applies to simulated measurement only"));
}

#[test]
fn measure_flag_validates_its_value() {
    let bad = halo(&["run", "--benchmark", "toy", "--measure", "bogus"]);
    assert!(!bad.status.success());
    assert!(
        stderr(&bad).contains("unknown measurement mode 'bogus' (sim|real)"),
        "{}",
        stderr(&bad)
    );
    // An explicit `sim` is the default path.
    let sim = halo(&["run", "--benchmark", "toy", "--measure", "sim", "--json"]);
    assert!(sim.status.success(), "--measure sim failed: {}", stderr(&sim));
    assert!(stdout(&sim).contains("\"benchmark\":\"toy\""));
}

#[test]
fn measure_real_gates_on_core_count_and_runs_when_multicore() {
    // HALO_THREADS pins the perceived core count, so both sides of the
    // available_parallelism gate are exercised regardless of the host.
    let gated = Command::new(env!("CARGO_BIN_EXE_halo"))
        .args(["run", "--benchmark", "toy", "--measure", "real"])
        .env("HALO_THREADS", "1")
        .output()
        .expect("the halo binary must spawn");
    assert!(gated.status.success(), "the single-core gate must exit green: {}", stderr(&gated));
    assert!(
        stdout(&gated).contains("needs a multi-core host"),
        "the gate must say why it skipped: {}",
        stdout(&gated)
    );
    let real = Command::new(env!("CARGO_BIN_EXE_halo"))
        .args(["run", "--benchmark", "toy", "--shards", "2", "--measure", "real", "--json"])
        .env("HALO_THREADS", "2")
        .output()
        .expect("the halo binary must spawn");
    assert!(real.status.success(), "multi-core real mode failed: {}", stderr(&real));
    let text = stdout(&real);
    for key in [
        "\"measure\":\"real\"",
        "\"engines\":2",
        "\"shards\":2",
        "\"serial_ms\":",
        "\"parallel_ms\":",
        "\"speedup\":",
    ] {
        assert!(text.contains(key), "real-mode JSON is missing {key}: {text}");
    }
}

#[test]
fn multithreaded_sweep_is_deterministic_serial_vs_parallel() {
    // The acceptance bar for the sharded runtime: the mt workloads produce
    // byte-identical JSON rows whether the sweep runs serially or fanned
    // out — shard selection must not leak any OS-thread nondeterminism
    // into the measurements.
    let args = ["run", "--benchmark", "server,xalanc-mt", "--shards", "4", "--json"];
    let serial = Command::new(env!("CARGO_BIN_EXE_halo"))
        .args(args)
        .env("HALO_THREADS", "1")
        .output()
        .expect("the halo binary must spawn");
    let parallel = Command::new(env!("CARGO_BIN_EXE_halo"))
        .args(args)
        .env("HALO_THREADS", "4")
        .output()
        .expect("the halo binary must spawn");
    assert!(serial.status.success(), "serial mt run failed: {}", stderr(&serial));
    assert!(parallel.status.success(), "parallel mt run failed: {}", stderr(&parallel));
    assert_eq!(
        serial.stdout,
        parallel.stdout,
        "mt sweep rows must be byte-identical:\n--- serial ---\n{}\n--- parallel ---\n{}",
        stdout(&serial),
        stdout(&parallel)
    );
    let text = stdout(&serial);
    for key in [
        "\"benchmark\":\"server\"",
        "\"benchmark\":\"xalanc-mt\"",
        "\"halo-sharded\":{",
        "\"coherence\":{\"threads\":",
        "\"thread_misses\":[",
        "\"remote_free\":{\"pushes\":",
    ] {
        assert!(text.contains(key), "mt sweep output is missing {key}:\n{text}");
    }
}

#[test]
fn baseline_runs_the_toy_workload() {
    let out = halo(&["baseline", "--benchmark", "toy", "--json"]);
    assert!(out.status.success(), "halo baseline failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"config\":\"baseline\""), "unexpected baseline output: {text}");
}

#[test]
fn plot_parallel_output_is_byte_identical_to_serial() {
    // Three cheap workloads through the full pipeline; `HALO_THREADS`
    // pins the thread count so both orderings are exercised regardless of
    // the host's core count.
    let args = ["plot", "--benchmark", "toy,povray,analyzer"];
    let serial = Command::new(env!("CARGO_BIN_EXE_halo"))
        .args(args)
        .env("HALO_THREADS", "1")
        .output()
        .expect("the halo binary must spawn");
    let parallel = Command::new(env!("CARGO_BIN_EXE_halo"))
        .args(args)
        .env("HALO_THREADS", "4")
        .output()
        .expect("the halo binary must spawn");
    assert!(serial.status.success(), "serial plot failed: {}", stderr(&serial));
    assert!(parallel.status.success(), "parallel plot failed: {}", stderr(&parallel));
    assert_eq!(
        serial.stdout, parallel.stdout,
        "parallel plot output must be byte-identical to serial:\n--- serial ---\n{}\n--- parallel ---\n{}",
        stdout(&serial),
        stdout(&parallel)
    );
    let text = stdout(&serial);
    for name in ["toy", "povray", "analyzer"] {
        assert!(text.contains(name), "plot output is missing {name}:\n{text}");
    }
}

#[test]
fn bench_writes_the_baseline_json() {
    let path = std::env::temp_dir().join(format!("halo_bench_smoke_{}.json", std::process::id()));
    let out = halo(&["bench", "--out", path.to_str().unwrap()]);
    assert!(out.status.success(), "halo bench failed: {}", stderr(&out));
    let json = std::fs::read_to_string(&path).expect("bench baseline file written");
    std::fs::remove_file(&path).ok();
    for key in [
        "\"schema\": \"halo-bench/v1\"",
        "profile/affinity_queue_100k",
        "mem/group_alloc_malloc_free_100k",
        "pipeline/evaluate_toy",
        "\"best_ns\"",
        "\"mean_ns\"",
    ] {
        assert!(json.contains(key), "bench JSON is missing {key}:\n{json}");
    }
}

#[test]
fn serve_runs_a_steady_phase_and_reports_epochs() {
    // A steady toy phase: no drift, no swaps, serve and static identical.
    let out = halo(&["serve", "--phases", "toy:2", "--shards", "2", "--json"]);
    assert!(out.status.success(), "halo serve failed: {}", stderr(&out));
    let text = stdout(&out);
    for key in [
        "\"windows\":2",
        "\"swaps\":0",
        "\"recovered\":false",
        "\"epochs\":[",
        "\"phase\":\"toy\"",
        "\"plan_epoch\":0",
        "\"drift\":0.0000",
        "\"swapped\":false",
        "\"swap_latency_us\":",
        "\"miss_reduction\":",
        "\"static_miss_reduction\":",
    ] {
        assert!(text.contains(key), "serve JSON is missing {key}: {text}");
    }
    // Text mode prints the per-epoch table and the verdict line.
    let human = halo(&["serve", "--phases", "toy:2", "--shards", "2"]);
    assert!(human.status.success(), "{}", stderr(&human));
    let human = stdout(&human);
    for needle in ["window", "epoch", "drift", "0 swaps applied"] {
        assert!(human.contains(needle), "serve table is missing {needle}: {human}");
    }
}

#[test]
fn serve_replays_deterministically_modulo_swap_latency() {
    // Everything in the report is deterministic except the swap
    // wall-clock latencies; with no swap in a steady phase the whole
    // document must match byte for byte.
    let args = ["serve", "--phases", "toy:2", "--shards", "2", "--json"];
    let a = halo(&args);
    let b = halo(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "steady serve replays must be byte-identical");
}

#[test]
fn serve_validates_its_flags_and_script() {
    let missing = halo(&["serve"]);
    assert!(!missing.status.success());
    assert!(stderr(&missing).contains("halo serve needs --phases"), "{}", stderr(&missing));

    let malformed = halo(&["serve", "--phases", "toy"]);
    assert!(!malformed.status.success());
    assert!(stderr(&malformed).contains("is not name:windows"), "{}", stderr(&malformed));

    let zero = halo(&["serve", "--phases", "toy:0"]);
    assert!(!zero.status.success());
    assert!(stderr(&zero).contains("positive window count"), "{}", stderr(&zero));

    let unknown = halo(&["serve", "--phases", "nonesuch:2"]);
    assert!(!unknown.status.success());
    assert!(stderr(&unknown).contains("unknown benchmark 'nonesuch'"), "{}", stderr(&unknown));

    let decay = halo(&["serve", "--phases", "toy:1", "--decay", "1.5"]);
    assert!(!decay.status.success());
    assert!(stderr(&decay).contains("--decay 1.5 is out of range"), "{}", stderr(&decay));

    let regroup = halo(&["serve", "--phases", "toy:1", "--regroup-every", "0"]);
    assert!(!regroup.status.success());
    assert!(
        stderr(&regroup).contains("--regroup-every must be at least 1"),
        "{}",
        stderr(&regroup)
    );

    // Run-configuration flags are rejected like `halo bench` does, so a
    // serve report always reflects the paper-default pipeline.
    let cfg = halo(&["serve", "--phases", "toy:1", "--chunk-size", "65536"]);
    assert!(!cfg.status.success());
    assert!(stderr(&cfg).contains("halo serve only accepts"), "{}", stderr(&cfg));
    // And `halo bench` rejects the serve-only flags in return.
    let bench = halo(&["bench", "--phases", "toy:1"]);
    assert!(!bench.status.success());
    assert!(stderr(&bench).contains("halo bench only accepts"), "{}", stderr(&bench));
}

#[test]
fn errors_are_reported_with_usage() {
    let no_command = halo(&[]);
    assert!(!no_command.status.success(), "bare `halo` must fail");
    assert!(stderr(&no_command).contains("USAGE"));

    let unknown_benchmark = halo(&["run", "--benchmark", "nonesuch"]);
    assert!(!unknown_benchmark.status.success());
    assert!(stderr(&unknown_benchmark).contains("unknown benchmark 'nonesuch'"));

    let unknown_flag = halo(&["run", "--frobnicate"]);
    assert!(!unknown_flag.status.success());
    assert!(stderr(&unknown_flag).contains("unknown flag '--frobnicate'"));

    let missing_value = halo(&["run", "--benchmark"]);
    assert!(!missing_value.status.success());
    assert!(stderr(&missing_value).contains("--benchmark needs a value"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    for flag in ["help", "--help", "-h"] {
        let out = halo(&[flag]);
        assert!(out.status.success(), "halo {flag} must succeed");
        assert!(stderr(&out).contains("USAGE"), "halo {flag} must print usage");
    }
}
