//! Pins the per-group reuse-policy outcomes (ISSUE 4 / ROADMAP §6
//! follow-up): leela — the paper's Table-1 fragmentation extreme — gets a
//! strict fragmentation improvement from the per-group `auto` policy while
//! keeping its L1D-miss win, and groups whose bump contiguity is winning
//! (roms's page-granularity grid group) stay at bump. Runs measure on the
//! paper's ref scale, exactly what `halo run` reports.

use halo::core::{measure, EvalConfig, Halo};
use halo::graph::{Granularity, ReusePolicy, ReusePolicyChoice};
use halo::mem::{FragReport, SizeClassAllocator};
use halo::workloads::{all, Workload};

fn workload(name: &str) -> Workload {
    all().into_iter().find(|w| w.name == name).unwrap()
}

/// Optimise and measure one workload under `config`, returning the miss
/// reduction vs the plain baseline, the whole-allocator fragmentation
/// report, and the resolved optimisation artefacts.
fn run(w: &Workload, config: &EvalConfig) -> (f64, FragReport, halo::core::Optimised) {
    let halo = Halo::new(config.halo);
    let opt = halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg).expect("pipeline runs");
    let mut base_alloc = SizeClassAllocator::new();
    let base = measure(&w.program, &mut base_alloc, &config.measure).expect("baseline runs");
    let mut alloc = halo.make_allocator(&opt);
    let m = measure(&opt.program, &mut alloc, &config.measure).expect("halo runs");
    (m.miss_reduction_vs(&base), alloc.frag_report(), opt)
}

/// The ISSUE 4 acceptance row: under the promoted per-group auto policy,
/// leela's fragmentation fraction drops strictly below its bump-only value
/// while the L1D-miss reduction stays within one point of the bump-only
/// (PR-3) result.
#[test]
fn leela_per_group_auto_cuts_fragmentation_and_keeps_the_miss_win() {
    let w = workload("leela");
    let auto_config = halo_bench::paper_config(&w);
    assert_eq!(
        auto_config.halo.reuse,
        ReusePolicyChoice::Auto,
        "the ablation winner is promoted into leela's paper defaults"
    );
    let mut bump_config = auto_config.clone();
    bump_config.halo.reuse = ReusePolicyChoice::Bump;

    let (bump_mr, bump_frag, bump_opt) = run(&w, &bump_config);
    let (auto_mr, auto_frag, auto_opt) = run(&w, &auto_config);

    assert!(
        auto_frag.frag_fraction() < bump_frag.frag_fraction(),
        "auto frag {:.4} must be strictly below bump-only {:.4}",
        auto_frag.frag_fraction(),
        bump_frag.frag_fraction()
    );
    assert!(
        auto_frag.wasted_bytes() < bump_frag.wasted_bytes(),
        "auto wastes {} vs bump {}",
        auto_frag.wasted_bytes(),
        bump_frag.wasted_bytes()
    );
    assert!(
        auto_mr >= bump_mr - 0.01,
        "miss reduction stays within 1% of the bump-only result: auto {:.4} vs bump {:.4}",
        auto_mr,
        bump_mr
    );
    // The improvement comes from a per-group plan flip, not from touching
    // the binary: same groups, at least one flipped to sharded free lists.
    assert_eq!(bump_opt.groups.len(), auto_opt.groups.len());
    assert!(
        auto_opt.groups.iter().any(|g| g.plan.reuse == ReusePolicy::ShardedFreeLists),
        "leela's fragmentation-heavy group flips to sharded: {:?}",
        auto_opt.groups.iter().map(|g| g.plan).collect::<Vec<_>>()
    );
    assert!(
        bump_opt.groups.iter().all(|g| g.plan.reuse == ReusePolicy::Bump),
        "the bump-only reference keeps every plan at bump"
    );
}

/// Groups whose bump contiguity is winning keep bump: roms's Table-1 row
/// is healthy (0.89% fragmentation), so its page-granularity grid group
/// must come out of the auto validator untouched — with the PR-3 page win
/// intact.
#[test]
fn roms_auto_keeps_bump_where_contiguity_wins() {
    let w = workload("roms");
    let config = halo_bench::paper_config(&w);
    assert_eq!(config.halo.reuse, ReusePolicyChoice::Auto);
    let (mr, _, opt) = run(&w, &config);
    assert_eq!(opt.granularity, Granularity::Page, "auto granularity still resolves to page");
    assert!(!opt.groups.is_empty());
    assert!(
        opt.groups.iter().all(|g| g.plan.reuse == ReusePolicy::Bump),
        "no roms group clears the fragmentation threshold: {:?}",
        opt.groups.iter().map(|g| g.plan).collect::<Vec<_>>()
    );
    assert!(mr > 0.10, "the page-granularity win survives reuse auto (got {:.2}%)", mr * 100.0);
}

/// An explicit `--reuse-policy sharded` stamps every group's plan, and the
/// synthesised allocator honours it (leela's wasted bytes collapse).
#[test]
fn explicit_sharded_choice_stamps_every_plan() {
    let w = workload("leela");
    let mut config = halo_bench::paper_config(&w);
    config.halo.reuse = ReusePolicyChoice::Sharded;
    let (_, frag, opt) = run(&w, &config);
    assert!(opt.groups.iter().all(|g| g.plan.reuse == ReusePolicy::ShardedFreeLists));
    let mut bump_config = halo_bench::paper_config(&w);
    bump_config.halo.reuse = ReusePolicyChoice::Bump;
    let (_, bump_frag, _) = run(&w, &bump_config);
    assert!(frag.wasted_bytes() < bump_frag.wasted_bytes());
}
