//! Regression guard for the Fig. 6 clusterer: the grouping output on all
//! 11 paper workloads, byte-for-byte.
//!
//! The CSR refactor of `halo_graph` (DESIGN.md §13) rewrote the edge
//! store and the clusterer's scan order; this snapshot pins the *output*
//! — every group's members, weight, and accesses on every workload's
//! train-input profile, at both granularities — so any behavioural drift
//! in the graph layer shows up as a readable diff rather than a silent
//! layout change.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! HALO_REGEN_SNAPSHOTS=1 cargo test --test grouping_snapshot
//! git diff tests/snapshots/grouping_paper_workloads.txt  # review!
//! ```

use halo::core::Halo;
use halo::graph::group;
use std::fmt::Write as _;
use std::path::PathBuf;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/grouping_paper_workloads.txt")
}

/// Render one graph's grouping outcome as stable text. Groups are listed
/// in the order `group` returns them (that order is part of the pinned
/// behaviour: it decides bit assignment downstream).
fn render_groups(tag: &str, graph: &halo::graph::AffinityGraph, out: &mut String) {
    let params = halo::graph::GroupingParams {
        min_weight: 32,
        merge_tolerance: 0.05,
        group_threshold: 0.0005,
        ..Default::default()
    };
    writeln!(
        out,
        "{tag} nodes={} edges={} total_accesses={}",
        graph.len(),
        graph.edge_count(),
        graph.total_accesses()
    )
    .unwrap();
    for (i, g) in group(graph, &params).iter().enumerate() {
        let members: Vec<String> = g.members.iter().map(|n| n.0.to_string()).collect();
        writeln!(
            out,
            "  {tag}.group[{i}] weight={} accesses={} members=[{}]",
            g.weight,
            g.accesses,
            members.join(",")
        )
        .unwrap();
    }
}

fn current_snapshot() -> String {
    let mut out = String::new();
    out.push_str("# Grouping snapshot: per-workload group lists on the train input.\n");
    out.push_str("# Regenerate with HALO_REGEN_SNAPSHOTS=1 (see tests/grouping_snapshot.rs).\n");
    for w in halo_workloads::all() {
        let config = halo_bench::paper_config(&w);
        let profile = Halo::new(config.halo)
            .profile_with_arg(&w.program, w.train.seed, w.train.arg)
            .unwrap_or_else(|e| panic!("{}: profiling failed: {e}", w.name));
        writeln!(out, "workload {}", w.name).unwrap();
        render_groups("object", &profile.graph, &mut out);
        if !profile.page_graph.is_empty() {
            render_groups("page", &profile.page_graph, &mut out);
        }
    }
    out
}

#[test]
fn grouping_output_matches_snapshot_on_all_paper_workloads() {
    let path = snapshot_path();
    let actual = current_snapshot();
    if std::env::var_os("HALO_REGEN_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {} ({e}); regenerate it", path.display()));
    // Byte-identical, and on mismatch point at the first diverging line so
    // the failure reads as "which workload/group moved".
    if actual != expected {
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "snapshot diverges at line {}", i + 1);
        }
        assert_eq!(actual.lines().count(), expected.lines().count(), "snapshot line count changed");
        panic!("snapshot mismatch"); // unreachable unless only trailing bytes differ
    }
}
