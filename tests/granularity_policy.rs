//! Pins the granularity policy's headline outcomes (ISSUE 3 / ROADMAP):
//! roms — the one benchmark object-granularity HALO cannot move — gains a
//! measurable miss reduction at page granularity, and omnetpp's
//! object-granularity regression is neutralised by `auto` declining to
//! group. Runs measure on the *train* scale to keep the suite fast; the
//! ref-scale numbers are reproduced by `halo run` and the
//! `ablation_granularity` harness.

use halo::core::EvalConfig;
use halo::graph::Granularity;
use halo::workloads::{all, Workload};

fn train_scale_config(w: &Workload) -> EvalConfig {
    let mut config = halo_bench::paper_config(w);
    config.measure.seed = w.train.seed;
    config.measure.entry_arg = w.train.arg;
    config
}

fn workload(name: &str) -> Workload {
    all().into_iter().find(|w| w.name == name).unwrap()
}

#[test]
fn roms_is_unmovable_at_object_granularity_but_wins_at_page() {
    let w = workload("roms");
    let run = |granularity: Granularity| {
        let mut config = train_scale_config(&w);
        config.halo.profile.granularity = granularity;
        let (base, opt, optimised) = halo_bench::run_halo_only(&w, &config);
        (opt.miss_reduction_vs(&base), optimised)
    };

    let (object_gain, object_opt) = run(Granularity::Object);
    assert!(
        object_gain.abs() < 0.01,
        "roms at object granularity reproduces the paper's ~0% (got {:.2}%)",
        object_gain * 100.0
    );
    assert_eq!(object_opt.granularity, Granularity::Object);

    let (page_gain, page_opt) = run(Granularity::Page);
    assert!(
        page_gain > 0.10,
        "page granularity must find the grid regularity (got {:.2}%)",
        page_gain * 100.0
    );
    assert_eq!(page_opt.granularity, Granularity::Page);
    // The win comes from grouping the large grids, which only the lifted
    // page-mode cap admits.
    assert!(!page_opt.groups.is_empty());

    let (auto_gain, auto_opt) = run(Granularity::Auto);
    assert_eq!(auto_opt.granularity, Granularity::Page, "auto resolves roms to page");
    assert!(!auto_opt.auto_declined);
    assert!((auto_gain - page_gain).abs() < 1e-9, "auto reproduces the page result");
}

#[test]
fn omnetpp_auto_declines_to_group_and_is_not_negative() {
    let w = workload("omnetpp");
    // paper_config already selects Auto for omnetpp (the pinned default).
    let config = train_scale_config(&w);
    assert_eq!(config.halo.profile.granularity, Granularity::Auto);
    let (base, opt, optimised) = halo_bench::run_halo_only(&w, &config);
    assert!(
        optimised.auto_declined,
        "grouping regresses omnetpp at both granularities; auto must decline"
    );
    assert!(optimised.groups.is_empty());
    let gain = opt.miss_reduction_vs(&base);
    assert_eq!(gain, 0.0, "declining to group leaves the binary byte-identical: {gain}");
}

#[test]
fn auto_keeps_object_granularity_where_it_already_wins() {
    // health is the canonical direct-malloc win: auto must not disturb it.
    let w = workload("health");
    let mut config = train_scale_config(&w);
    config.halo.profile.granularity = Granularity::Auto;
    let (base, opt, optimised) = halo_bench::run_halo_only(&w, &config);
    assert_eq!(optimised.granularity, Granularity::Object);
    assert!(!optimised.auto_declined);
    assert!(opt.miss_reduction_vs(&base) > 0.05, "health keeps its object-granularity win");
}
