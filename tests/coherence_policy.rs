//! Integration pins for the MESI-lite coherence model (DESIGN.md §11):
//! the multi-threaded workloads must show per-thread sharding *reducing*
//! invalidation traffic versus plain HALO, single-threaded workloads must
//! report exactly zero coherence events, and the remote-free queue
//! counters must surface alongside. The CLI-level serial ≡ parallel
//! byte-identity of the new JSON fields is pinned in `cli_smoke.rs`
//! (`multithreaded_sweep_is_deterministic_serial_vs_parallel`).

use halo::cache::CoherenceStats;

#[test]
fn sharded_halo_has_strictly_fewer_invalidations_on_mt_workloads() {
    // The PR's acceptance criterion: on both mt workloads the per-thread
    // sharded allocator separates each thread's objects into its own
    // shard, so cross-thread false sharing (producer A's header next to
    // producer B's on one line) disappears while true sharing (the
    // handed-off payloads) remains.
    for w in halo::workloads::multithreaded() {
        let result = halo_bench::run_workload(&w, &["halo-sharded"]);
        let plain = result.halo().measurement.coherence;
        let sharded = result.get("halo-sharded").expect("extra backend measured");
        let sc = sharded.measurement.coherence;
        assert!(
            plain.invalidations > 0,
            "{}: an mt workload must generate coherence traffic under plain HALO: {plain:?}",
            w.name
        );
        assert!(
            sc.invalidations < plain.invalidations,
            "{}: sharded must invalidate strictly less than plain ({} vs {})",
            w.name,
            sc.invalidations,
            plain.invalidations
        );
        // The workloads really ran multi-threaded, with per-thread misses
        // attributed and remote-free pressure reported.
        assert!(
            sharded.thread_stats.len() > 1,
            "{}: expected a per-thread breakdown, got {:?}",
            w.name,
            sharded.thread_stats
        );
        let queue = sharded.sharded.expect("the sharded backend reports queue pressure");
        assert!(
            queue.remote_frees > 0 && queue.remote_peak_queue > 0,
            "{}: cross-thread frees must ride the remote queues: {queue:?}",
            w.name
        );
        assert_eq!(
            queue.remote_frees, queue.remote_drained,
            "{}: the join-time flush drains every queued free",
            w.name
        );
    }
}

#[test]
fn single_threaded_workloads_report_exactly_zero_coherence_events() {
    // The end-to-end face of the bit-identity guarantee: no workload that
    // never switches threads may see any coherence counter move, on any
    // backend, and the per-thread breakdown collapses to thread 0.
    let mut workloads = vec![halo::workloads::toy::build()];
    workloads.extend(halo::workloads::all().into_iter().filter(|w| w.name == "povray"));
    assert_eq!(workloads.len(), 2, "toy + povray");
    for w in &workloads {
        let result = halo_bench::run_workload(w, &[]);
        for (id, r) in &result.backends {
            assert_eq!(
                r.measurement.coherence,
                CoherenceStats::default(),
                "{}/{id}: single-threaded runs must stay coherence-silent",
                w.name
            );
            assert_eq!(r.thread_stats.len(), 1, "{}/{id}: one logical thread", w.name);
            assert_eq!(r.thread_stats[0].thread, 0);
            assert_eq!(
                r.thread_stats[0].stats, r.measurement.stats,
                "{}/{id}: the only thread owns every access",
                w.name
            );
        }
    }
}
