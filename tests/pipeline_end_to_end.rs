//! Cross-crate integration tests: the full HALO pipeline applied to the
//! motivating workload and the benchmark models, checking the paper's
//! qualitative claims end to end.

use halo::core::{measure, Halo, HaloConfig, MeasureConfig};
use halo::graph::GroupingParams;
use halo::mem::{AllocatorStats, SizeClassAllocator};
use halo::profile::{ProfileConfig, Profiler};
use halo::vm::{Engine, EngineLimits, NullMonitor};
use halo::workloads::{self, toy, Workload};

fn limits() -> EngineLimits {
    EngineLimits { max_instructions: 500_000_000, max_call_depth: 256 }
}

fn pipeline_config() -> HaloConfig {
    HaloConfig {
        profile: ProfileConfig::default(),
        grouping: GroupingParams { min_weight: 8, ..Default::default() },
        alloc: Default::default(),
        limits: limits(),
        ..Default::default()
    }
}

fn measure_config(w: &Workload) -> MeasureConfig {
    MeasureConfig {
        limits: limits(),
        seed: w.reference.seed,
        entry_arg: w.reference.arg,
        ..Default::default()
    }
}

/// The headline claim on the motivating example: HALO reduces L1D misses
/// and does not slow the program down.
#[test]
fn fig2_pattern_improves_under_halo() {
    let w = toy::build();
    let halo = Halo::new(pipeline_config());
    let opt = halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg).expect("pipeline");
    assert!(!opt.groups.is_empty(), "A and B form a group");

    let mut base = SizeClassAllocator::new();
    let base_m = measure(&w.program, &mut base, &measure_config(&w)).expect("baseline");
    let mut halo_alloc = halo.make_allocator(&opt);
    let halo_m = measure(&opt.program, &mut halo_alloc, &measure_config(&w)).expect("halo");

    assert!(
        halo_m.miss_reduction_vs(&base_m) > 0.05,
        "expected >5% miss reduction, got {:.1}%",
        halo_m.miss_reduction_vs(&base_m) * 100.0
    );
    assert!(halo_m.speedup_vs(&base_m) > -0.01, "no slowdown");
}

/// The cold type (C) must not be pooled with the hot pair (A/B): its
/// allocations fall back to the default allocator.
#[test]
fn fig2_cold_type_falls_back() {
    let w = toy::build();
    let halo = Halo::new(pipeline_config());
    let opt = halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg).expect("pipeline");
    let mut alloc = halo.make_allocator(&opt);
    measure(&opt.program, &mut alloc, &measure_config(&w)).expect("runs");
    let stats = alloc.stats();
    assert!(stats.grouped_allocs > 0);
    assert!(stats.fallback_allocs > 0, "create_c is ungrouped");
    // Roughly one third of the tokens are C (plus do_something noise).
    let grouped_fraction =
        stats.grouped_allocs as f64 / (stats.grouped_allocs + stats.fallback_allocs) as f64;
    assert!(grouped_fraction > 0.4 && grouped_fraction < 0.9, "{grouped_fraction}");
}

/// Rewriting must not change program behaviour: identical allocation and
/// access counts under the same allocator policy.
#[test]
fn rewriting_preserves_workload_semantics() {
    for w in workloads::all() {
        let halo = Halo::new(pipeline_config());
        let opt = match halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg) {
            Ok(o) => o,
            Err(e) => panic!("{}: {e}", w.name),
        };
        let run = |p: &halo::vm::Program| {
            let mut alloc = halo::vm::MallocOnlyAllocator::new();
            Engine::new(p)
                .with_seed(w.train.seed)
                .with_entry_arg(w.train.arg)
                .with_limits(limits())
                .run(&mut alloc, &mut NullMonitor)
                .expect("runs")
        };
        let original = run(&w.program);
        let rewritten = run(&opt.program);
        assert_eq!(original.allocs, rewritten.allocs, "{}", w.name);
        assert_eq!(original.frees, rewritten.frees, "{}", w.name);
        assert_eq!(original.loads, rewritten.loads, "{}", w.name);
        assert_eq!(original.stores, rewritten.stores, "{}", w.name);
        assert_eq!(original.return_value, rewritten.return_value, "{}", w.name);
        // Instrumentation adds instructions, never removes them.
        assert!(rewritten.instructions >= original.instructions, "{}", w.name);
    }
}

/// The synthesised allocator never leaks or double-counts: after a full
/// run, live accounting matches what the program left allocated.
#[test]
fn allocator_accounting_is_consistent_across_pipeline() {
    let w = toy::build();
    let halo = Halo::new(pipeline_config());
    let opt = halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg).expect("pipeline");
    let mut alloc = halo.make_allocator(&opt);
    let (_, exit) =
        halo::core::measure_with(&opt.program, &mut alloc, &measure_config(&w)).expect("runs");
    let live = exit.allocs - exit.frees;
    assert_eq!(alloc.live_objects() as u64, live);
}

/// Profiling is deterministic: two runs with the same seed produce the
/// same graph, groups, and monitored sites.
#[test]
fn pipeline_determinism_across_workloads() {
    for name in ["health", "povray", "xalanc"] {
        let all = workloads::all();
        let w = all.iter().find(|w| w.name == name).unwrap();
        let halo = Halo::new(pipeline_config());
        let a = halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg).unwrap();
        let b = halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg).unwrap();
        assert_eq!(a.groups, b.groups, "{name}");
        assert_eq!(a.ident.site_bits, b.ident.site_bits, "{name}");
        assert_eq!(a.rewrite, b.rewrite, "{name}");
    }
}

/// povray's wrapper must not defeat HALO: groups still form, and they
/// separate geometry from textures (the §3 claim).
#[test]
fn povray_wrapper_is_pierced_by_full_context() {
    let all = workloads::all();
    let w = all.iter().find(|w| w.name == "povray").unwrap();
    let halo = Halo::new(pipeline_config());
    let opt = halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg).unwrap();
    assert!(!opt.groups.is_empty(), "wrapper did not stop grouping");
    // The grouped contexts are the plane/csg creators, not the texture one.
    for g in &opt.groups {
        for &m in &g.members {
            let name = &opt.profile.context(m).name;
            assert!(
                name.contains("create_plane") || name.contains("create_csg"),
                "unexpected grouped context {name}"
            );
        }
    }
}

/// leela's external operator new: contexts are origin-traced through the
/// library frame, so node and board allocations are distinguishable.
#[test]
fn leela_contexts_pierce_operator_new() {
    let all = workloads::all();
    let w = all.iter().find(|w| w.name == "leela").unwrap();
    let halo = Halo::new(pipeline_config());
    let profile = halo.profile_with_arg(&w.program, w.train.seed, w.train.arg).unwrap();
    let names: Vec<&str> = profile.alive_contexts().map(|c| c.name.as_str()).collect();
    assert!(
        names.iter().any(|n| n.contains("expand_node")),
        "node context visible through operator new: {names:?}"
    );
    // No context is identified *only* by the wrapper-internal site.
    for c in profile.alive_contexts() {
        assert!(c.chain.len() >= 2, "context {} has no caller information", c.name);
    }
}

/// Profiler object tracking against a real allocator: no tracked-object
/// overlap panics in debug mode across every workload (debug_assert in
/// ObjectTracker::insert fires on overlapping live regions).
#[test]
fn profiling_never_sees_overlapping_objects() {
    for w in workloads::all() {
        let mut profiler = Profiler::new(&w.program, ProfileConfig::default());
        let mut alloc = SizeClassAllocator::new();
        Engine::new(&w.program)
            .with_seed(w.train.seed)
            .with_entry_arg(w.train.arg)
            .with_limits(limits())
            .run(&mut alloc, &mut profiler)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let profile = profiler.finish();
        assert!(profile.total_allocs > 0, "{}", w.name);
    }
}
