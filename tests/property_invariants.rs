//! Property-based tests over the core data structures and invariants
//! listed in DESIGN.md §8.

use halo::cache::{
    CacheHierarchy, CoherenceStats, CoherentHierarchy, HierarchyConfig, LineState, TimingModel,
};
use halo::graph::{group, AffinityGraph, Granularity, GroupingParams, NodeId};
use halo::hds::Grammar;
use halo::mem::{
    AllocatorStats, BoundaryTagAllocator, GroupAllocConfig, GroupSelector, HaloGroupAllocator,
    SelectorTable, ShardedHaloAllocator, SizeClassAllocator,
};
use halo::profile::{AffinityQueue, ObjectTracker, ProfileConfig, Profiler, QueueEntry};
use halo::vm::{AllocKind, CallSite, FuncId, GroupState, Memory, Monitor, VmAllocator};
use halo_bench::ReferenceAffinityQueue;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

fn site() -> CallSite {
    CallSite::new(FuncId(0), 0)
}

/// Naive MESI-lite reference model: a flat `(thread, line) → state` map
/// with the transitions written straight from the `halo_cache::coherent`
/// module docs and no cache structure at all. Valid only while nothing can
/// be evicted, which the property test's geometry guarantees (32 distinct
/// lines against the Xeon L1's 64 sets × 8 ways: one line per set).
#[derive(Default)]
struct ReferenceMesi {
    states: HashMap<(u16, u64), LineState>, // absent = Invalid
    invalidations: u64,
    upgrades: u64,
    remote_fills: u64,
}

impl ReferenceMesi {
    const THREADS: u16 = 4;

    fn state(&self, t: u16, line: u64) -> LineState {
        self.states.get(&(t, line)).copied().unwrap_or(LineState::Invalid)
    }

    fn access(&mut self, t: u16, line: u64, store: bool) {
        match self.state(t, line) {
            // Hit.
            LineState::Modified => {}
            LineState::Exclusive => {
                if store {
                    // Silent upgrade: no bus traffic.
                    self.states.insert((t, line), LineState::Modified);
                }
            }
            LineState::Shared => {
                if store {
                    // Bus upgrade: announced blind, so counted even if no
                    // remote copy survives; invalidations count removals.
                    self.upgrades += 1;
                    for u in (0..Self::THREADS).filter(|&u| u != t) {
                        if self.states.remove(&(u, line)).is_some() {
                            self.invalidations += 1;
                        }
                    }
                    self.states.insert((t, line), LineState::Modified);
                }
            }
            // Miss: probe the other threads, then fill.
            LineState::Invalid => {
                let remotes: Vec<u16> = (0..Self::THREADS)
                    .filter(|&u| u != t && self.states.contains_key(&(u, line)))
                    .collect();
                if !remotes.is_empty() {
                    self.remote_fills += 1;
                }
                let fill = if store {
                    for &u in &remotes {
                        self.states.remove(&(u, line));
                        self.invalidations += 1;
                    }
                    LineState::Modified
                } else {
                    for &u in &remotes {
                        self.states.insert((u, line), LineState::Shared);
                    }
                    if remotes.is_empty() {
                        LineState::Exclusive
                    } else {
                        LineState::Shared
                    }
                };
                self.states.insert((t, line), fill);
            }
        }
    }
}

/// Straightforward reference implementation of the page-granularity
/// profiling path (DESIGN.md §7): a `VecDeque` affinity queue keyed by
/// `addr >> 12`, linear-scan object attribution, and a full rescan of the
/// allocation history for co-allocatability. The real `Profiler` must
/// produce the same page graph, edge for edge.
#[derive(Default)]
struct ReferencePageProfiler {
    /// Live objects: (start, end, ctx, alloc seq).
    objects: Vec<(u64, u64, u32, u64)>,
    /// Every allocation ever, chronologically: (seq, ctx).
    alloc_events: Vec<(u64, u32)>,
    /// The page queue: (page, ctx, owner alloc seq, access bytes).
    queue: VecDeque<(u64, u32, u64, u64)>,
    queue_bytes: u64,
    /// Canonicalised (min, max) context pairs → edge weight.
    edges: HashMap<(u32, u32), u64>,
    /// Page-granularity macro-access count per context.
    page_accesses: HashMap<u32, u64>,
    total_page_accesses: u64,
    distance: u64,
}

impl ReferencePageProfiler {
    fn new(distance: u64) -> Self {
        ReferencePageProfiler { distance, ..Default::default() }
    }

    fn on_alloc(&mut self, seq: u64, start: u64, size: u64, ctx: u32) {
        self.alloc_events.push((seq, ctx));
        self.objects.push((start, start + size.max(1), ctx, seq));
    }

    fn on_free(&mut self, start: u64) {
        self.objects.retain(|&(s, _, _, _)| s != start);
    }

    fn coallocatable(&self, x: u32, sx: u64, y: u32, sy: u64) -> bool {
        let (lo, hi) = (sx.min(sy), sx.max(sy));
        let violates =
            |ctx: u32| self.alloc_events.iter().any(|&(s, c)| c == ctx && lo < s && s < hi);
        if violates(x) {
            return false;
        }
        x == y || !violates(y)
    }

    fn on_access(&mut self, addr: u64, width: u8) {
        let Some(&(_, _, ctx, seq)) =
            self.objects.iter().find(|&&(s, e, _, _)| s <= addr && addr < e)
        else {
            return;
        };
        let page = addr >> 12;
        if self.queue.back().is_some_and(|&(p, _, _, _)| p == page) {
            return; // same macro-access
        }
        let mut partners = Vec::new();
        let mut seen = HashSet::new();
        let mut accumulated = 0u64;
        for &(p, pctx, pseq, psize) in self.queue.iter().rev() {
            accumulated += psize;
            if accumulated >= self.distance {
                break;
            }
            if p == page {
                continue; // no self-affinity
            }
            if seen.insert(p) {
                partners.push((pctx, pseq)); // no double counting
            }
        }
        for (pctx, pseq) in partners {
            if self.coallocatable(ctx, seq, pctx, pseq) {
                let key = (ctx.min(pctx), ctx.max(pctx));
                *self.edges.entry(key).or_insert(0) += 1;
            }
        }
        self.total_page_accesses += 1;
        *self.page_accesses.entry(ctx).or_insert(0) += 1;
        self.queue.push_back((page, ctx, seq, width as u64));
        self.queue_bytes += width as u64;
        while self.queue_bytes > self.distance {
            match self.queue.pop_front() {
                Some((_, _, _, b)) => self.queue_bytes -= b,
                None => break,
            }
        }
    }
}

/// Reference interval map for `ObjectTracker` equivalence: the plain
/// `BTreeMap` range-query path the page index replaced.
#[derive(Default)]
struct ReferenceTracker {
    by_start: BTreeMap<u64, (u64, u64)>, // start -> (end, id)
}

impl ReferenceTracker {
    fn insert(&mut self, id: u64, start: u64, size: u64) {
        self.by_start.insert(start, (start + size.max(1), id));
    }

    fn remove(&mut self, start: u64) -> Option<u64> {
        self.by_start.remove(&start).map(|(_, id)| id)
    }

    fn find(&self, addr: u64) -> Option<u64> {
        let (_, &(end, id)) = self.by_start.range(..=addr).next_back()?;
        (addr < end).then_some(id)
    }

    fn overlaps(&self, start: u64, size: u64) -> bool {
        let end = start + size.max(1);
        self.find(start).is_some()
            || self.find(end - 1).is_some()
            || self.by_start.range(start..end).next().is_some()
    }
}

/// Drive any allocator through a random alloc/free/realloc script while
/// shadow-checking that live regions never overlap and contents survive
/// reallocation.
fn check_allocator<A: VmAllocator + AllocatorStats>(
    mut alloc: A,
    script: &[(u8, u64)],
    gs: &GroupState,
) {
    let mut mem = Memory::new();
    let mut live: HashMap<u64, (u64, u64)> = HashMap::new(); // ptr -> (size, stamp)
    let mut stamp = 0u64;
    for &(op, arg) in script {
        match op % 3 {
            0 => {
                let size = arg % 300 + 1;
                let ptr = alloc.malloc(size, site(), gs, &mut mem);
                assert_ne!(ptr, 0);
                assert_eq!(ptr % 8, 0, "minimum alignment");
                for (&p, &(s, _)) in &live {
                    assert!(
                        ptr + size <= p || p + s <= ptr,
                        "overlap: new [{ptr:#x},{:#x}) vs live [{p:#x},{:#x})",
                        ptr + size,
                        p + s
                    );
                }
                stamp += 1;
                mem.write(ptr, 1, stamp & 0xff);
                live.insert(ptr, (size, stamp & 0xff));
            }
            1 => {
                if let Some(&p) = live.keys().nth(arg as usize % live.len().max(1)) {
                    let (_, st) = live.remove(&p).expect("tracked");
                    assert_eq!(mem.read(p, 1), st, "contents intact");
                    alloc.free(p, &mut mem);
                }
            }
            _ => {
                if let Some(&p) = live.keys().nth(arg as usize % live.len().max(1)) {
                    let (_, st) = live.remove(&p).expect("tracked");
                    let new_size = arg % 500 + 1;
                    let q = alloc.realloc(p, new_size, site(), gs, &mut mem);
                    assert_ne!(q, 0);
                    assert_eq!(mem.read(q, 1), st, "realloc preserves prefix");
                    for (&op_, &(os, _)) in &live {
                        assert!(q + new_size <= op_ || op_ + os <= q, "realloc overlap");
                    }
                    live.insert(q, (new_size, st));
                }
            }
        }
    }
    let live_bytes: u64 = live.values().map(|&(s, _)| s).sum();
    assert_eq!(alloc.live_bytes(), live_bytes);
    assert_eq!(alloc.live_objects(), live.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn size_class_allocator_never_overlaps(script in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..200)) {
        check_allocator(SizeClassAllocator::new(), &script, &GroupState::default());
    }

    #[test]
    fn boundary_tag_allocator_never_overlaps(script in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..200)) {
        check_allocator(BoundaryTagAllocator::new(), &script, &GroupState::default());
    }

    #[test]
    fn group_allocator_never_overlaps(
        script in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..200),
        bits in 0u8..4,
    ) {
        let table = SelectorTable::new(
            vec![
                GroupSelector { group: 0, conjunctions: vec![vec![0]] },
                GroupSelector { group: 1, conjunctions: vec![vec![1]] },
            ],
            2,
        );
        let config = GroupAllocConfig { chunk_size: 16 * 1024, slab_size: 16 * 1024 * 8, ..Default::default() };
        let mut gs = GroupState::new(2);
        if bits & 1 != 0 { gs.set(0); }
        if bits & 2 != 0 { gs.set(1); }
        check_allocator(HaloGroupAllocator::new(config, table), &script, &gs);
    }

    #[test]
    fn affinity_queue_respects_all_constraints(
        accesses in proptest::collection::vec((0u64..24, 1u64..5), 1..400),
        distance in 16u64..512,
    ) {
        let mut q = AffinityQueue::new(distance);
        let mut last: Option<u64> = None;
        for (obj, size_exp) in accesses {
            let size = 1u64 << size_exp; // 2..16 bytes
            let was_consecutive = last == Some(obj);
            let partners = q.record(QueueEntry {
                obj,
                ctx: NodeId(obj as u32),
                alloc_seq: obj,
                size,
            });
            if was_consecutive {
                prop_assert!(partners.is_empty(), "dedup violated");
            } else {
                last = Some(obj);
            }
            // No self-affinity and no double counting.
            let mut seen = std::collections::HashSet::new();
            let mut bytes = 0u64;
            for p in partners {
                prop_assert_ne!(p.obj, obj, "self-affinity");
                prop_assert!(seen.insert(p.obj), "double counting");
                bytes += p.size;
            }
            // Partner bytes can never reach the affinity distance.
            prop_assert!(bytes < distance + size * partners.len() as u64);
        }
    }

    #[test]
    fn ring_affinity_queue_matches_the_reference_implementation(
        accesses in proptest::collection::vec((0u64..24, 0u64..5), 1..500),
        distance in 1u64..512,
    ) {
        let mut ring = AffinityQueue::new(distance);
        let mut reference = ReferenceAffinityQueue::new(distance);
        for (step, (obj, size_exp)) in accesses.into_iter().enumerate() {
            let size = 1u64 << size_exp; // 1..16 bytes
            let entry = QueueEntry { obj, ctx: NodeId(obj as u32), alloc_seq: obj, size };
            let was_consecutive = reference.entries.back().is_some_and(|e| e.obj == obj);
            let expected = reference.record(entry);
            // Same partners, in the same (newest-first) order — via both
            // the materializing and the streaming API.
            let mut streamed = Vec::new();
            let recorded = ring.record_with(entry, |p| streamed.push(*p));
            prop_assert_eq!(&streamed, &expected, "streamed partners diverge at step {}", step);
            prop_assert_eq!(
                recorded, !was_consecutive,
                "consecutiveness verdict diverges at step {}", step
            );
            // Same eviction: the queues hold identical entries afterwards.
            let ring_entries: Vec<QueueEntry> = ring.iter().copied().collect();
            let ref_entries: Vec<QueueEntry> = reference.entries.iter().copied().collect();
            prop_assert_eq!(ring_entries, ref_entries, "queue contents diverge at step {}", step);
            prop_assert_eq!(ring.len(), reference.entries.len());
        }
    }

    #[test]
    fn object_tracker_page_index_matches_the_btreemap_path(
        ops in proptest::collection::vec((0u8..4, 0u64..48, 0u64..80_000), 1..250),
    ) {
        let mut tracker = ObjectTracker::new();
        let mut reference = ReferenceTracker::default();
        let mut next_id = 0u64;
        let mut starts: Vec<u64> = Vec::new();
        for (op, slot, raw) in ops {
            match op {
                // Insert at a coarse grid so adjacency and page-boundary
                // spanning both occur; sizes reach 80 KB to exercise the
                // large-object fallback (> 8 pages), and 0 for the
                // zero-size special case.
                0 | 1 => {
                    let start = 0x4000 + slot * 4096; // grid straddles pages as sizes vary
                    let size = raw;
                    if !reference.overlaps(start, size) {
                        tracker.insert(next_id, start, size, NodeId(0));
                        reference.insert(next_id, start, size);
                        starts.push(start);
                        next_id += 1;
                    }
                }
                2 => {
                    if !starts.is_empty() {
                        let start = starts.swap_remove(raw as usize % starts.len());
                        let removed = tracker.remove(start).map(|o| o.id);
                        prop_assert_eq!(removed, reference.remove(start));
                    }
                }
                _ => {
                    // Probe around an arbitrary address.
                    let addr = slot * 4096 + raw % 8192;
                    prop_assert_eq!(
                        tracker.find(addr).map(|o| o.id),
                        reference.find(addr),
                        "find({:#x}) diverges", addr
                    );
                }
            }
            prop_assert_eq!(tracker.len(), reference.by_start.len());
            // Boundary probes for every live object: first byte, last
            // byte, one past the end.
            for &s in starts.iter().take(8) {
                for probe in [s, s.wrapping_sub(1)] {
                    prop_assert_eq!(
                        tracker.find(probe).map(|o| o.id),
                        reference.find(probe),
                        "boundary find({:#x}) diverges", probe
                    );
                }
            }
        }
    }

    #[test]
    fn page_granularity_profiler_matches_the_reference_implementation(
        ops in proptest::collection::vec((0u8..8, 0u8..4, 0u64..100_000), 1..300),
        distance in 16u64..512,
    ) {
        // A trivial one-function program so the Profiler can be driven
        // directly through its Monitor hooks; allocation contexts are
        // distinguished purely by the call-site pc.
        let mut pb = halo::vm::ProgramBuilder::new();
        let mut m = pb.function("main");
        m.ret(None);
        let main = m.finish();
        let program = pb.finish(main);

        let config = ProfileConfig {
            affinity_distance: distance,
            granularity: Granularity::Page,
            keep_fraction: 1.0,
            ..ProfileConfig::default()
        };
        let mut profiler = Profiler::new(&program, config);
        let mut reference = ReferencePageProfiler::new(distance);

        // Objects at a bump cursor with page-odd strides so small objects
        // share pages, large ones (beyond the 4 KiB object cap) span
        // several, and frees punch holes the page path must not resurrect.
        let mut cursor = 0x10_000u64;
        let mut live: Vec<(u64, u64)> = Vec::new(); // (start, size)
        let mut ctx_of_site: HashMap<u8, u32> = HashMap::new();
        let mut next_ctx = 0u32;
        let mut seq = 0u64;
        for (op, pc, raw) in ops {
            match op {
                // Allocate: mostly small, sometimes above the tracked cap.
                0..=2 => {
                    let size = match raw % 4 {
                        0 => raw % 56 + 8,
                        1 => raw % 900 + 64,
                        2 => raw % 3000 + 1000,
                        _ => raw % 20_000 + 5_000, // untracked at object level
                    };
                    let site = CallSite::new(FuncId(0), pc as u32);
                    let ctx = *ctx_of_site.entry(pc).or_insert_with(|| {
                        let c = next_ctx;
                        next_ctx += 1;
                        c
                    });
                    profiler.on_alloc(AllocKind::Malloc, site, size, cursor, 0);
                    reference.on_alloc(seq, cursor, size, ctx);
                    live.push((cursor, size));
                    cursor += size.max(1) + raw % 176 + 8;
                    seq += 1;
                }
                // Free a random live object.
                3 => {
                    if !live.is_empty() {
                        let (start, _) = live.swap_remove(raw as usize % live.len());
                        profiler.on_free(site(), start);
                        reference.on_free(start);
                    }
                }
                // Access a random offset inside a random live object.
                _ => {
                    if let Some(&(start, size)) = live.get(raw as usize % live.len().max(1)) {
                        let addr = start + raw % size.max(1);
                        let width = (raw % 8 + 1) as u8;
                        profiler.on_access(addr, width, false);
                        reference.on_access(addr, width);
                    }
                }
            }
        }

        let profile = profiler.finish();
        prop_assert_eq!(
            profile.total_page_accesses, reference.total_page_accesses,
            "page macro-access totals diverge"
        );
        // The profiler interns contexts in first-allocation order, exactly
        // like the reference's dense ids.
        prop_assert_eq!(profile.contexts.len(), next_ctx as usize);
        for c in &profile.contexts {
            let expected = reference.page_accesses.get(&(c.id.0)).copied().unwrap_or(0);
            prop_assert_eq!(c.page_accesses, expected, "page accesses diverge for {}", c.id);
        }
        for a in 0..next_ctx {
            for b in a..next_ctx {
                let expected = reference.edges.get(&(a, b)).copied().unwrap_or(0);
                prop_assert_eq!(
                    profile.page_graph.weight(NodeId(a), NodeId(b)),
                    expected,
                    "page edge ({}, {}) diverges", a, b
                );
            }
        }
    }

    #[test]
    fn grouping_output_is_well_formed(
        edges in proptest::collection::vec((0u32..20, 0u32..20, 1u64..1000), 0..120),
        max_members in 2usize..8,
    ) {
        let mut g = AffinityGraph::new();
        let nodes: Vec<NodeId> = (0..20).map(|i| g.add_node((i as u64 + 1) * 10)).collect();
        for (a, b, w) in edges {
            g.add_edge_weight(nodes[a as usize], nodes[b as usize], w);
        }
        let params = GroupingParams {
            min_weight: 1,
            max_group_members: max_members,
            merge_tolerance: 0.05,
            group_threshold: 0.0,
            max_groups: None,
        };
        let groups = group(&g, &params);
        let mut seen = std::collections::HashSet::new();
        for gr in &groups {
            prop_assert!(!gr.members.is_empty());
            prop_assert!(gr.members.len() <= max_members);
            prop_assert!(gr.weight > 0, "kept groups carry weight");
            for &m in &gr.members {
                prop_assert!(seen.insert(m), "groups must be disjoint");
                prop_assert!(g.is_alive(m));
            }
        }
    }

    #[test]
    fn sequitur_roundtrips_and_keeps_invariants(
        input in proptest::collection::vec(0u32..12, 0..600),
    ) {
        let mut grammar = Grammar::build(&input);
        prop_assert_eq!(grammar.expand_input(), input);
        grammar.sequitur().check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant violated: {e}"))
        })?;
        // Rule frequencies are consistent: every non-start rule is used at
        // least twice somewhere in the derivation.
        for r in grammar.rule_ids() {
            prop_assert!(grammar.frequency(r) >= 2, "rule {r} used once");
        }
    }

    #[test]
    fn per_group_overrides_with_uniform_config_match_the_global_path(
        script in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..200),
        bits in 0u8..4,
    ) {
        // Uniform per-group overrides must be behaviourally invisible:
        // the overrides constructor with every entry equal to the global
        // config replays any operation sequence pointer-for-pointer
        // against the plain constructor (the refactor from masked chunk
        // lookup + global spare pool to ordered lookup + per-group
        // budgets must not shift the homogeneous case).
        let table = || SelectorTable::new(
            vec![
                GroupSelector { group: 0, conjunctions: vec![vec![0]] },
                GroupSelector { group: 1, conjunctions: vec![vec![1]] },
            ],
            2,
        );
        let config = GroupAllocConfig { chunk_size: 16 * 1024, slab_size: 16 * 1024 * 8, ..Default::default() };
        let mut gs = GroupState::new(2);
        if bits & 1 != 0 { gs.set(0); }
        if bits & 2 != 0 { gs.set(1); }
        let mut plain = HaloGroupAllocator::new(config, table());
        let mut over = HaloGroupAllocator::with_group_configs(config, table(), vec![config, config]);
        let mut mem_a = Memory::new();
        let mut mem_b = Memory::new();
        let mut live: Vec<u64> = Vec::new();
        for (op, raw) in script {
            if op % 3 == 2 && !live.is_empty() {
                let p = live.swap_remove(raw as usize % live.len());
                plain.free(p, &mut mem_a);
                over.free(p, &mut mem_b);
            } else {
                let size = 1 + raw % 6000;
                let pa = plain.malloc(size, site(), &gs, &mut mem_a);
                let pb = over.malloc(size, site(), &gs, &mut mem_b);
                prop_assert_eq!(pa, pb, "allocation placement diverged");
                live.push(pa);
            }
            prop_assert_eq!(plain.live_grouped_bytes(), over.live_grouped_bytes());
            prop_assert_eq!(plain.resident_grouped_bytes(), over.resident_grouped_bytes());
        }
        prop_assert_eq!(plain.stats(), over.stats());
        prop_assert_eq!(plain.frag_report(), over.frag_report());
    }

    #[test]
    fn sharded_with_one_shard_matches_the_plain_allocator(
        script in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..200),
        bits in 0u8..4,
        reuse_bits in 0u8..4,
        chunk_choice in 0u8..3,
    ) {
        // The differential identity behind the sharded runtime: with a
        // single shard there is no foreign thread, so the thread-keyed
        // front (shard selection, remote-queue servicing, the extra lock
        // hop) must be behaviourally invisible — any malloc/free trace
        // replays pointer-for-pointer against the plain single-arena
        // allocator under the same per-group plans.
        let table = || SelectorTable::new(
            vec![
                GroupSelector { group: 0, conjunctions: vec![vec![0]] },
                GroupSelector { group: 1, conjunctions: vec![vec![1]] },
            ],
            2,
        );
        let config = GroupAllocConfig {
            chunk_size: 32 * 1024,
            slab_size: 32 * 1024 * 8,
            ..Default::default()
        };
        // Randomized per-group plans: the identity must hold whatever the
        // groups' reuse policies and (valid) chunk sizes are.
        let chunk_for = |g: u8| match (chunk_choice + g) % 3 {
            0 => 8 * 1024,
            1 => 16 * 1024,
            _ => 32 * 1024,
        };
        let overrides: Vec<GroupAllocConfig> = (0..2u8)
            .map(|g| GroupAllocConfig {
                chunk_size: chunk_for(g),
                reuse_policy: if reuse_bits & (1 << g) != 0 {
                    halo::mem::ReusePolicy::ShardedFreeLists
                } else {
                    halo::mem::ReusePolicy::Bump
                },
                ..config
            })
            .collect();
        let mut gs = GroupState::new(2);
        if bits & 1 != 0 { gs.set(0); }
        if bits & 2 != 0 { gs.set(1); }
        let mut plain =
            HaloGroupAllocator::with_group_configs(config, table(), overrides.clone());
        let mut sharded = ShardedHaloAllocator::new(1, config, table(), overrides);
        let mut mem_a = Memory::new();
        let mut mem_b = Memory::new();
        let mut live: Vec<u64> = Vec::new();
        for (op, raw) in script {
            if op % 3 == 2 && !live.is_empty() {
                let p = live.swap_remove(raw as usize % live.len());
                plain.free(p, &mut mem_a);
                sharded.free(p, &mut mem_b);
            } else {
                let size = 1 + raw % 6000;
                let pa = plain.malloc(size, site(), &gs, &mut mem_a);
                let pb = sharded.malloc(size, site(), &gs, &mut mem_b);
                prop_assert_eq!(pa, pb, "allocation placement diverged");
                live.push(pa);
            }
            prop_assert_eq!(plain.live_grouped_bytes(), sharded.live_grouped_bytes());
            prop_assert_eq!(plain.resident_grouped_bytes(), sharded.resident_grouped_bytes());
        }
        prop_assert_eq!(plain.stats(), sharded.stats());
        prop_assert_eq!(plain.frag_report(), sharded.frag_report());
        prop_assert_eq!(plain.group_frag_reports(), sharded.group_frag_reports());
        let remote = sharded.sharded_stats();
        prop_assert_eq!(remote.remote_frees, 0, "one shard: every free is local");
        prop_assert_eq!(sharded.remote_pending(), 0);
    }

    #[test]
    fn coherent_hierarchy_on_one_thread_is_bit_identical_to_plain(
        trace in proptest::collection::vec((0u64..32_768, 1u8..17, any::<bool>()), 1..500),
        config_idx in 0usize..3,
    ) {
        // The differential identity behind the coherent hierarchy (the
        // PR-5 shards=1 test's shape at the cache layer): driven by a
        // single logical thread there is no peer to cohere with, so the
        // MESI-lite machinery must be behaviourally invisible — every
        // counter matches the plain hierarchy after every access, the
        // coherence counters stay zero, and the cycle model agrees.
        let config = [
            HierarchyConfig::tiny(),
            HierarchyConfig { adjacent_line_prefetch: true, ..HierarchyConfig::tiny() },
            HierarchyConfig::xeon_w2195(),
        ][config_idx];
        let mut plain = CacheHierarchy::new(config);
        let mut coh = CoherentHierarchy::new(config);
        for (step, &(addr, width, store)) in trace.iter().enumerate() {
            plain.access(addr, width, store);
            coh.access(addr, width, store);
            prop_assert_eq!(plain.stats(), coh.stats(), "counters diverge at step {}", step);
        }
        prop_assert_eq!(coh.coherence(), CoherenceStats::default());
        let t = TimingModel::skylake_like();
        prop_assert_eq!(
            t.cycles(trace.len() as u64, &plain.stats()),
            t.cycles_coherent(trace.len() as u64, &coh.stats(), &coh.coherence()),
            "single-thread cycles must not change under the coherent model"
        );
        let per = coh.thread_stats();
        prop_assert_eq!(per.len(), 1);
        prop_assert_eq!(per[0].thread, 0);
        prop_assert_eq!(per[0].stats, coh.stats());
    }

    #[test]
    fn coherent_hierarchy_matches_the_mesi_reference_model(
        trace in proptest::collection::vec((0u16..4, 0u64..32, 0u64..56, any::<bool>()), 1..300),
    ) {
        // Randomized multi-thread interleavings against the naive
        // per-line state map: same states line-for-line after every
        // access, same invalidation/upgrade/remote-fill counts. The Xeon
        // geometry guarantees the 32-line universe can never evict (one
        // line per L1 set), which is the reference model's validity
        // domain.
        const LINE: u64 = 64;
        let mut h = CoherentHierarchy::new(HierarchyConfig::xeon_w2195());
        let mut reference = ReferenceMesi::default();
        for (step, &(thread, line, offset, store)) in trace.iter().enumerate() {
            h.set_thread(thread);
            h.access(line * LINE + offset, 8, store); // offset ≤ 55: one line
            reference.access(thread, line, store);
            for t in 0..ReferenceMesi::THREADS {
                for l in 0..32u64 {
                    prop_assert_eq!(
                        h.line_state(t, l * LINE),
                        reference.state(t, l),
                        "state of (thread {}, line {}) diverges at step {}", t, l, step
                    );
                }
            }
            let c = h.coherence();
            prop_assert_eq!(c.invalidations, reference.invalidations, "invalidations at {}", step);
            prop_assert_eq!(c.upgrades, reference.upgrades, "upgrades at {}", step);
            prop_assert_eq!(c.remote_fills, reference.remote_fills, "remote fills at {}", step);
        }
    }

    #[test]
    fn selector_tables_classify_by_popularity_order(
        masks in proptest::collection::vec(proptest::collection::vec(0u16..12, 1..3), 1..6),
        set_bits in proptest::collection::vec(0u16..12, 0..12),
    ) {
        let selectors: Vec<GroupSelector> = masks
            .iter()
            .enumerate()
            .map(|(i, conj)| GroupSelector { group: i, conjunctions: vec![conj.clone()] })
            .collect();
        let table = SelectorTable::new(selectors.clone(), 12);
        let mut gs = GroupState::new(12);
        for b in set_bits {
            gs.set(b);
        }
        let expected = selectors.iter().find(|s| s.matches(&gs)).map(|s| s.group);
        prop_assert_eq!(table.classify(&gs), expected);
    }
}

/// One rendered sweep row under per-group plans: pipeline + measurement at
/// *train* scale (fast, and exactly the path the per-group auto validator
/// races through), with the resolved plans in the output so a plan-order
/// or plan-content divergence shows up byte-for-byte.
fn plan_sweep_row(w: &halo::workloads::Workload, config: &halo::core::EvalConfig) -> String {
    let halo = halo::core::Halo::new(config.halo);
    let opt = halo
        .optimise_with_arg(&w.program, w.train.seed, w.train.arg)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let mut base_alloc = SizeClassAllocator::new();
    let base = halo::core::measure(&w.program, &mut base_alloc, &config.measure).expect("base");
    let mut alloc = halo.make_allocator(&opt);
    let m = halo::core::measure(&opt.program, &mut alloc, &config.measure).expect("halo");
    let frag = alloc.frag_report();
    let plans: Vec<String> =
        opt.groups.iter().enumerate().map(|(i, g)| format!("g{i}:{}", g.plan)).collect();
    format!(
        "{} misses={} mr={:.6} frag={:.6} wasted={} plans=[{}]",
        w.name,
        m.stats.l1_misses,
        m.miss_reduction_vs(&base),
        frag.frag_fraction(),
        frag.wasted_bytes(),
        plans.join(","),
    )
}

proptest! {
    // Each case runs several pipeline+measure jobs; keep the count low
    // (HALO_PROPTEST_CASES can raise it).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn per_group_plan_sweeps_are_serial_parallel_identical(
        choice_idx in 0usize..3,
        chunk_idx in 0usize..3,
        spare_idx in 0usize..3,
    ) {
        // The PR-2 invariant — multi-workload sweeps produce byte-identical
        // output at any thread count — must survive per-group plans: the
        // reuse validator runs extra train measurements per job, and a
        // nondeterministic or cross-job-leaking resolution would diverge
        // between the serial and parallel paths (or between repeated runs).
        //
        // HALO_THREADS pins the pool above the container's core count. Set
        // once, to a constant, and never unset: every case (and any other
        // par_map user in this binary, of which there are none) sees the
        // same value regardless of test scheduling. Rust's std::env locks
        // set_var/var against each other, and this pure-Rust test binary
        // never calls libc getenv directly, so the write is race-free.
        static PIN_THREADS: std::sync::Once = std::sync::Once::new();
        PIN_THREADS.call_once(|| std::env::set_var("HALO_THREADS", "4"));
        let choice = halo::graph::ReusePolicyChoice::ALL[choice_idx];
        let chunk_exp = [14u32, 17, 20][chunk_idx];
        let spare = [0, 1, usize::MAX][spare_idx];
        let workloads: Vec<halo::workloads::Workload> = ["toy", "leela", "health"]
            .iter()
            .map(|n| {
                let mut all = halo::workloads::all();
                all.push(halo::workloads::toy::build());
                let i = all.iter().position(|w| w.name == *n).unwrap();
                all.swap_remove(i)
            })
            .collect();
        let configs: Vec<halo::core::EvalConfig> = workloads
            .iter()
            .map(|w| {
                let mut config = halo_bench::paper_config(w);
                config.halo.reuse = choice;
                config.halo.alloc.chunk_size = 1 << chunk_exp;
                config.halo.alloc.slab_size = (1u64 << chunk_exp) * 64;
                config.halo.alloc.max_spare_chunks = spare;
                // Train scale keeps each job cheap.
                config.measure.seed = w.train.seed;
                config.measure.entry_arg = w.train.arg;
                config
            })
            .collect();
        let jobs: Vec<(&halo::workloads::Workload, &halo::core::EvalConfig)> =
            workloads.iter().zip(&configs).collect();
        let serial: Vec<String> = jobs.iter().map(|(w, c)| plan_sweep_row(w, c)).collect();
        let parallel = halo::core::par_map(&jobs, |(w, c)| plan_sweep_row(w, c));
        prop_assert_eq!(&serial, &parallel, "serial and parallel sweep rows diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DESIGN.md §13: a profiling event stream partitioned across any
    /// number of per-shard [`halo::graph::SubGraph`]s, merged in any
    /// order, is observably identical to single-pass recording — node
    /// ranges union by stable id, access counts and edge weights sum.
    /// Each event carries its own shard assignment (the partition) and a
    /// seed shuffles the merge order, so both axes vary per case.
    #[test]
    fn shard_partition_and_merge_order_are_immaterial(
        events in proptest::collection::vec(
            (0u8..4, 0u32..24, 0u32..24, 1u64..20, 0usize..6), 1..400),
        order_seed in any::<u64>(),
    ) {
        use halo::graph::{NodeId, SubGraph};
        let mut single = SubGraph::new();
        let mut shards: Vec<SubGraph> = (0..6).map(|_| SubGraph::new()).collect();
        for &(op, u, v, w, shard) in &events {
            for sub in [&mut single, &mut shards[shard]] {
                if op == 0 {
                    sub.add_accesses(NodeId(u), w);
                } else {
                    sub.add_edge_weight(NodeId(u), NodeId(v), w);
                }
            }
        }
        // Merge the shards in a random order.
        let mut rng = halo::vm::SplitMix64::new(order_seed);
        let mut pending = shards;
        while pending.len() > 1 {
            let i = rng.next_below(pending.len() as u64) as usize;
            let a = pending.swap_remove(i);
            let j = rng.next_below(pending.len() as u64) as usize;
            let b = pending.swap_remove(j);
            pending.push(a.merge(b));
        }
        let merged = pending.pop().unwrap();
        prop_assert_eq!(merged.len(), single.len(), "node range");
        prop_assert_eq!(merged.edges(), single.edges(), "edge multiset");
        for n in 0..24u32 {
            prop_assert_eq!(
                merged.accesses(NodeId(n)), single.accesses(NodeId(n)), "accesses({})", n);
        }
        // And materialised as full graphs they render byte-identically.
        let a = halo::graph::to_dot(&merged.into_graph(), &|n| n.to_string(), &[], 1);
        let b = halo::graph::to_dot(&single.into_graph(), &|n| n.to_string(), &[], 1);
        prop_assert_eq!(a, b, "rendered graphs diverge");
    }

    /// The parallel tree union (`halo::core::par_merge_subgraphs`, the
    /// pipeline's merge strategy) against the serial left fold
    /// (`Profiler::finish`'s default): identical graphs, byte for byte,
    /// down to the rendered grouping of the result.
    #[test]
    fn parallel_subgraph_union_is_byte_identical_to_serial(
        events in proptest::collection::vec(
            (0u8..4, 0u32..24, 0u32..24, 1u64..20, 0usize..8), 1..400),
    ) {
        use halo::graph::{NodeId, SubGraph};
        let mut shards: Vec<SubGraph> = (0..8).map(|_| SubGraph::new()).collect();
        for &(op, u, v, w, shard) in &events {
            if op == 0 {
                shards[shard].add_accesses(NodeId(u), w);
            } else {
                shards[shard].add_edge_weight(NodeId(u), NodeId(v), w);
            }
        }
        let serial = shards.iter().cloned().fold(SubGraph::new(), SubGraph::merge);
        let parallel = halo::core::par_merge_subgraphs(shards);
        prop_assert_eq!(serial.edges(), parallel.edges(), "edge multiset");
        let gs = serial.into_graph();
        let gp = parallel.into_graph();
        let params = halo::graph::GroupingParams { min_weight: 1, ..Default::default() };
        prop_assert_eq!(
            format!("{:?}", group(&gs, &params)),
            format!("{:?}", group(&gp, &params)),
            "groupings diverge"
        );
        prop_assert_eq!(
            halo::graph::to_dot(&gs, &|n| n.to_string(), &[], 1),
            halo::graph::to_dot(&gp, &|n| n.to_string(), &[], 1),
            "rendered graphs diverge"
        );
    }
}
