//! # HALO — post-link heap-layout optimisation (CGO 2020 reproduction)
//!
//! This facade crate re-exports the full reproduction of
//! *HALO: Post-Link Heap-Layout Optimisation* (Savage & Jones, CGO 2020):
//!
//! * [`vm`] — the simulated binary format and interpreter.
//! * [`cache`] — the memory-hierarchy simulator and timing model.
//! * [`mem`] — baseline allocators and HALO's specialised group allocator.
//! * [`graph`] — the affinity graph and grouping algorithms (Figs. 6–8).
//! * [`profile`] — the Pin-equivalent profiler (§4.1).
//! * [`ident`] — selector construction (Fig. 10).
//! * [`rewrite`] — the BOLT-equivalent instrumentation pass (§4.3).
//! * [`hds`] — the hot-data-streams comparison technique (Chilimbi & Shaham).
//! * [`core`] — pipeline orchestration and the measurement harness.
//! * [`workloads`] — the 11 evaluated benchmark models.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the reproduced
//! results. The quickest entry point:
//!
//! ```
//! use halo::core::{Halo, HaloConfig};
//! use halo::workloads::toy;
//!
//! let workload = toy::build();
//! let pipeline = Halo::new(HaloConfig::default());
//! let optimised = pipeline
//!     .optimise_with_arg(&workload.program, workload.train.seed, workload.train.arg)
//!     .unwrap();
//! assert!(!optimised.groups.is_empty());
//! ```

pub use halo_cache as cache;
pub use halo_core as core;
pub use halo_graph as graph;
pub use halo_hds as hds;
pub use halo_ident as ident;
pub use halo_mem as mem;
pub use halo_profile as profile;
pub use halo_rewrite as rewrite;
pub use halo_vm as vm;
pub use halo_workloads as workloads;
