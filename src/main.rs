//! The `halo` command-line tool, mirroring the paper artefact's workflow
//! (§A.5): `halo baseline`, `halo run`, and `halo plot`, with the §A.8
//! per-benchmark flags (`--chunk-size`, `--max-spare-chunks`,
//! `--max-groups`, …).
//!
//! ```text
//! halo list
//! halo baseline --benchmark povray
//! halo run --benchmark povray --affinity-distance 128 --json
//! halo run --benchmark omnetpp --chunk-size 131072 --max-spare-chunks 0
//! halo plot
//! ```

use halo::core::{
    evaluate_with_arg, measure, par_each_ordered, serve, EvalConfig, EvalResult, ServeConfig,
    ServePhase,
};
use halo::graph::{Granularity, ReusePolicyChoice};
use halo::mem::{FaultPlan, SizeClassAllocator};
use halo::workloads::{all, Workload};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Rust ignores SIGPIPE by default, which turns `halo list | head` into a
/// broken-pipe panic; restore the default disposition so the process just
/// terminates like other CLI tools.
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() -> ExitCode {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "list" => cmd_list(),
        "baseline" => cmd_baseline(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "plot" => cmd_plot(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "halo — post-link heap-layout optimisation (CGO 2020 reproduction)\n\
         \n\
         USAGE:\n\
         \thalo list\n\
         \thalo baseline --benchmark <name>\n\
         \thalo run --benchmark <name[,name…]|all> [options]\n\
         \thalo plot [--metric misses|speedup]\n\
         \thalo bench [--json] [--out <path>] [--compare <old.json>]\n\
         \thalo serve --phases <name:windows[,name:windows…]> [options]\n\
         \n\
         Multi-workload sweeps (run/plot/baseline over several benchmarks)\n\
         fan out across CPU cores; output order is deterministic. Set\n\
         HALO_THREADS=1 to force the serial path.\n\
         \n\
         RUN OPTIONS (defaults follow §5.1):\n\
         \t--affinity-distance <bytes>   affinity distance A (default 128)\n\
         \t--chunk-size <bytes>          group-chunk size (default 1048576)\n\
         \t--max-spare-chunks <n|inf>    dirty chunks kept before purging (default 1)\n\
         \t--max-groups <n>              cap on groups (default unlimited)\n\
         \t--merge-tolerance <fraction>  grouping slack T (default 0.05)\n\
         \t--granularity object|page|auto  grouping granularity (default: the\n\
         \t                              paper's object mode; roms/omnetpp default\n\
         \t                              to auto, the §6 page-fallback policy)\n\
         \t--reuse-policy bump|sharded|auto  in-chunk reuse policy for group\n\
         \t                              plans (default: the paper's bump mode;\n\
         \t                              leela/health/roms default to auto, which\n\
         \t                              flips fragmentation-heavy groups to\n\
         \t                              sharded free lists when the train input\n\
         \t                              validates the flip)\n\
         \t--shards <n>                  also run the thread-safe sharded HALO\n\
         \t                              runtime with n shards (the mt workloads\n\
         \t                              `server` and `xalanc-mt` exercise its\n\
         \t                              cross-thread remote-free path)\n\
         \t--inject <schedule>           replay a deterministic fault schedule\n\
         \t                              against the HALO backends and report\n\
         \t                              the degradation ladder's counters.\n\
         \t                              Comma-separated seed=N, site@N (exact\n\
         \t                              1-based occurrence), site~P (rate);\n\
         \t                              sites: vmm, chunk, queue, panic\n\
         \t                              (e.g. seed=7,vmm@3,queue~0.01)\n\
         \t--measure sim|real            sim (default): the simulated hierarchy\n\
         \t                              with the MESI-lite coherence model.\n\
         \t                              real: wall-clock the sharded runtime\n\
         \t                              serially vs. on real OS threads (needs\n\
         \t                              a multi-core host; implies --shards)\n\
         \t--hds                         also run the hot-data-streams technique\n\
         \t--random                      also run the random four-pool allocator\n\
         \t--ptmalloc                    also run the ptmalloc2-style baseline\n\
         \t--json                        machine-readable output\n\
         \n\
         BENCH OPTIONS:\n\
         \t--out <path>                  baseline file to write (default BENCH_profile.json)\n\
         \t--compare <old.json>          after measuring, print a per-row delta table\n\
         \t                              against a previous baseline file\n\
         \t--json                        also print the JSON document to stdout\n\
         \n\
         SERVE OPTIONS (online re-optimisation, DESIGN.md §15):\n\
         \t--phases <script>             the scripted workload-mix shift: comma-\n\
         \t                              separated name:windows pairs served in\n\
         \t                              order (e.g. server:2,xalanc-mt:3). Each\n\
         \t                              window streams a decayed profile, checks\n\
         \t                              grouping drift, hot-swaps the plan when\n\
         \t                              it drifts, and measures serve vs the\n\
         \t                              static phase-0 plan vs the baseline\n\
         \t--shards <n>                  shard count of the serving allocator (default 4)\n\
         \t--decay <fraction>            per-window retention of the streaming\n\
         \t                              affinity graph (default 0.5)\n\
         \t--drift-threshold <fraction>  re-optimise when grouping drift exceeds\n\
         \t                              this (default 0.3)\n\
         \t--regroup-every <n>           re-group the streamed graph every n\n\
         \t                              windows (default 1)\n\
         \t--json                        machine-readable per-epoch report (the\n\
         \t                              swap_latency_us fields are wall-clock —\n\
         \t                              everything else replays deterministically)"
    );
}

struct Flags {
    benchmark: Option<String>,
    affinity_distance: Option<u64>,
    chunk_size: Option<u64>,
    max_spare_chunks: Option<usize>,
    max_groups: Option<usize>,
    merge_tolerance: Option<f64>,
    granularity: Option<Granularity>,
    reuse_policy: Option<ReusePolicyChoice>,
    shards: Option<usize>,
    inject: Option<FaultPlan>,
    measure: String,
    hds: bool,
    random: bool,
    ptmalloc: bool,
    json: bool,
    metric: String,
    out: Option<String>,
    compare: Option<String>,
    phases: Option<String>,
    decay: Option<f64>,
    drift_threshold: Option<f64>,
    regroup_every: Option<u64>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        benchmark: None,
        affinity_distance: None,
        chunk_size: None,
        max_spare_chunks: None,
        max_groups: None,
        merge_tolerance: None,
        granularity: None,
        reuse_policy: None,
        shards: None,
        inject: None,
        measure: "sim".to_string(),
        hds: false,
        random: false,
        ptmalloc: false,
        json: false,
        metric: "misses".to_string(),
        out: None,
        compare: None,
        phases: None,
        decay: None,
        drift_threshold: None,
        regroup_every: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--benchmark" => flags.benchmark = Some(value("--benchmark")?),
            "--affinity-distance" => {
                flags.affinity_distance =
                    Some(value("--affinity-distance")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--chunk-size" => {
                flags.chunk_size = Some(value("--chunk-size")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--max-spare-chunks" => {
                let v = value("--max-spare-chunks")?;
                flags.max_spare_chunks = Some(if v == "inf" {
                    usize::MAX
                } else {
                    v.parse().map_err(|e| format!("{e}"))?
                });
            }
            "--max-groups" => {
                flags.max_groups = Some(value("--max-groups")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--merge-tolerance" => {
                flags.merge_tolerance =
                    Some(value("--merge-tolerance")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--granularity" => flags.granularity = Some(value("--granularity")?.parse()?),
            "--reuse-policy" => flags.reuse_policy = Some(value("--reuse-policy")?.parse()?),
            "--shards" => {
                let v = value("--shards")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid shard count '{v}' (a positive integer)"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                // The CLI never moves the group base, so the default
                // layout's bound applies; checking here turns what would
                // be a constructor panic into a clear parse error.
                let max = halo::mem::ShardedHaloAllocator::max_shards(
                    &halo::mem::GroupAllocConfig::default(),
                );
                if n > max {
                    return Err(format!(
                        "--shards {n} exceeds the address layout's limit of {max} shards"
                    ));
                }
                flags.shards = Some(n);
            }
            "--inject" => flags.inject = Some(FaultPlan::parse(&value("--inject")?)?),
            "--measure" => {
                let v = value("--measure")?;
                if v != "sim" && v != "real" {
                    return Err(format!("unknown measurement mode '{v}' (sim|real)"));
                }
                flags.measure = v;
            }
            "--metric" => flags.metric = value("--metric")?,
            "--out" => flags.out = Some(value("--out")?),
            "--compare" => flags.compare = Some(value("--compare")?),
            "--phases" => flags.phases = Some(value("--phases")?),
            "--decay" => {
                let v = value("--decay")?;
                let d: f64 =
                    v.parse().map_err(|_| format!("invalid decay '{v}' (a fraction in [0, 1])"))?;
                if !(0.0..=1.0).contains(&d) {
                    return Err(format!("--decay {v} is out of range (a fraction in [0, 1])"));
                }
                flags.decay = Some(d);
            }
            "--drift-threshold" => {
                let v = value("--drift-threshold")?;
                let d: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid drift threshold '{v}' (a fraction in [0, 1])"))?;
                if !(0.0..=1.0).contains(&d) {
                    return Err(format!(
                        "--drift-threshold {v} is out of range (a fraction in [0, 1])"
                    ));
                }
                flags.drift_threshold = Some(d);
            }
            "--regroup-every" => {
                let v = value("--regroup-every")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid regroup interval '{v}' (a positive integer)"))?;
                if n == 0 {
                    return Err("--regroup-every must be at least 1".to_string());
                }
                flags.regroup_every = Some(n);
            }
            "--hds" => flags.hds = true,
            "--random" => flags.random = true,
            "--ptmalloc" => flags.ptmalloc = true,
            "--json" => flags.json = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(flags)
}

fn find_workloads(selector: Option<&str>) -> Result<Vec<Workload>, String> {
    let mut workloads = all();
    workloads.push(halo::workloads::toy::build()); // the Fig. 2 example
    match selector {
        // The default sweep stays the paper set (+ toy): the mt models
        // are selectable by name but do not change the figure sweeps.
        None | Some("all") => Ok(workloads),
        Some(names) => {
            workloads.extend(halo::workloads::multithreaded());
            // Comma-separated selection, e.g. `--benchmark toy,povray`.
            let mut picked: Vec<Workload> = Vec::new();
            for name in names.split(',') {
                if picked.iter().any(|w| w.name == name) {
                    return Err(format!("duplicate benchmark '{name}' in --benchmark list"));
                }
                let i = workloads
                    .iter()
                    .position(|w| w.name == name)
                    .ok_or_else(|| format!("unknown benchmark '{name}' (try `halo list`)"))?;
                picked.push(workloads.swap_remove(i));
            }
            Ok(picked)
        }
    }
}

fn config_for(workload: &Workload, flags: &Flags) -> EvalConfig {
    let mut config = paper_defaults(workload);
    if let Some(a) = flags.affinity_distance {
        config.halo.profile.affinity_distance = a;
    }
    if let Some(c) = flags.chunk_size {
        config.halo.alloc.chunk_size = c;
        config.halo.alloc.slab_size = (c * 64).max(4 << 20);
    }
    if let Some(s) = flags.max_spare_chunks {
        config.halo.alloc.max_spare_chunks = s;
    }
    if let Some(g) = flags.max_groups {
        config.halo.grouping.max_groups = Some(g);
    }
    if let Some(t) = flags.merge_tolerance {
        config.halo.grouping.merge_tolerance = t;
    }
    if let Some(g) = flags.granularity {
        config.halo.profile.granularity = g;
    }
    if let Some(r) = flags.reuse_policy {
        config.halo.reuse = r;
    }
    config.faults = flags.inject.clone();
    config.extras.clear();
    if let Some(n) = flags.shards {
        config.shards = n;
        config.extras.push("halo-sharded");
    }
    if flags.random {
        config.extras.push("random");
    }
    if flags.ptmalloc {
        config.extras.push("ptmalloc");
    }
    config
}

/// The §5.1 defaults with the §A.8 per-benchmark flags — delegated to
/// `halo_bench::paper_config`, the single source of the per-benchmark
/// policy, so `halo run` and the bench harnesses cannot drift apart (the
/// binary already links `halo_bench` for `halo bench`).
fn paper_defaults(workload: &Workload) -> EvalConfig {
    halo_bench::paper_config(workload)
}

fn cmd_list() -> Result<(), String> {
    println!("{:<10} {:>12} {:>12}  note", "benchmark", "train arg", "ref arg");
    for w in all() {
        println!("{:<10} {:>12} {:>12}  {}", w.name, w.train.arg, w.reference.arg, w.note);
    }
    println!(
        "\nmulti-threaded models (select by name; not part of `--benchmark all`;\n\
         use --shards to shard the allocator):"
    );
    for w in halo::workloads::multithreaded() {
        println!("{:<10} {:>12} {:>12}  {}", w.name, w.train.arg, w.reference.arg, w.note);
    }
    Ok(())
}

/// Fan a sweep out across cores, printing each workload's rendered rows
/// in input order as soon as its prefix completes (so output streams like
/// the serial loop and is byte-identical to it). The first failure stops
/// the sweep — unstarted jobs are skipped — after printing the successful
/// prefix, matching the old serial behaviour.
fn run_sweep<T: Sync>(
    items: &[T],
    f: impl Fn(&T) -> Result<String, String> + Sync,
) -> Result<(), String> {
    use std::io::Write as _;
    let mut first_err = None;
    par_each_ordered(items, f, |rendered| match rendered {
        Ok(text) => {
            print!("{text}");
            std::io::stdout().flush().ok();
            true
        }
        Err(e) => {
            first_err = Some(e);
            false
        }
    });
    first_err.map_or(Ok(()), Err)
}

fn cmd_baseline(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let workloads = find_workloads(flags.benchmark.as_deref())?;
    run_sweep(&workloads, |w| {
        let config = config_for(w, &flags);
        let mut alloc = SizeClassAllocator::new();
        let m = measure(&w.program, &mut alloc, &config.measure)
            .map_err(|e| format!("{}: {e}", w.name))?;
        if flags.json {
            Ok(format!(
                "{{\"benchmark\":\"{}\",\"config\":\"baseline\",\"l1d_misses\":{},\"cycles\":{:.0},\"instructions\":{},\"allocs\":{}}}\n",
                w.name, m.stats.l1_misses, m.cycles, m.instructions, m.allocs
            ))
        } else {
            Ok(format!(
                "{:<10} baseline: {} L1D misses, {:.2} Mcycles, {} allocs\n",
                w.name,
                m.stats.l1_misses,
                m.cycles / 1e6,
                m.allocs
            ))
        }
    })
}

fn run_one(w: &Workload, flags: &Flags) -> Result<EvalResult, String> {
    let config = config_for(w, flags);
    evaluate_with_arg(&w.program, w.name, w.train.seed, w.train.arg, &config)
        .map_err(|e| format!("{}: {e}", w.name))
}

/// The resolved per-group plan summary as a JSON array.
fn plans_json(r: &EvalResult) -> String {
    let mut out = String::from("[");
    for (i, g) in r.optimised.groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let spare = if g.plan.max_spare_chunks == usize::MAX {
            "\"inf\"".to_string()
        } else {
            g.plan.max_spare_chunks.to_string()
        };
        let _ = write!(
            out,
            "{{\"group\":{},\"members\":{},\"granularity\":\"{}\",\"reuse\":\"{}\",\"chunk_size\":{},\"max_spare_chunks\":{}}}",
            i,
            g.members.len(),
            g.plan.granularity,
            g.plan.reuse,
            g.plan.chunk_size,
            spare,
        );
    }
    out.push(']');
    out
}

/// The resolved per-group plan summary for the human-readable row, e.g.
/// `[g0 sharded@8KiB, g1 bump@1MiB]`.
fn plans_text(r: &EvalResult) -> String {
    let body: Vec<String> =
        r.optimised.groups.iter().enumerate().map(|(i, g)| format!("g{i} {}", g.plan)).collect();
    format!("[{}]", body.join(", "))
}

/// The `"coherence"` object of `halo run --json`: the logical thread
/// count plus one entry per measured backend (registry order) with its
/// MESI-lite counters and per-thread L1D miss breakdown. Single-threaded
/// workloads report `"threads":1` and all-zero counters, so the field is
/// schema-stable across workloads.
fn coherence_json(r: &EvalResult) -> String {
    let threads = r.backends.iter().map(|(_, res)| res.thread_stats.len()).max().unwrap_or(1);
    let mut out = format!("{{\"threads\":{},\"backends\":[", threads.max(1));
    for (i, (id, res)) in r.backends.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let c = res.measurement.coherence;
        let misses: Vec<String> =
            res.thread_stats.iter().map(|t| t.stats.l1_misses.to_string()).collect();
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"invalidations\":{},\"upgrades\":{},\"remote_fills\":{},\"thread_misses\":[{}]}}",
            id,
            c.invalidations,
            c.upgrades,
            c.remote_fills,
            misses.join(","),
        );
    }
    out.push_str("]}");
    out
}

/// The `"remote_free"` object of `halo run --json` — cross-shard
/// remote-free queue pressure of the sharded runtime, present only when a
/// sharded backend was measured (`--shards`).
fn remote_free_json(r: &EvalResult) -> String {
    let Some(s) = r.backends.iter().find_map(|(_, res)| res.sharded.as_ref()) else {
        return String::new();
    };
    format!(
        ",\"remote_free\":{{\"pushes\":{},\"drained\":{},\"max_queue_depth\":{}}}",
        s.remote_frees, s.remote_drained, s.remote_peak_queue
    )
}

/// The `"degradation"` object of `halo run --json` — the degradation
/// ladder's counters per backend that maintains them (registry order).
/// Emitted only for `--inject` runs or when a run genuinely degraded, so
/// fault-free output stays byte-identical to builds without fault
/// support.
fn degradation_json(r: &EvalResult, flags: &Flags) -> String {
    let entries: Vec<_> =
        r.backends.iter().filter_map(|(id, res)| res.degrade.map(|d| (id, d))).collect();
    if flags.inject.is_none() && !entries.iter().any(|(_, d)| d.any()) {
        return String::new();
    }
    let mut out = String::from(",\"degradation\":{\"backends\":[");
    for (i, (id, d)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"injected_faults\":{},\"fallback_routes\":{},\"degraded_groups\":{},\"degraded_shards\":{},\"queue_overflows\":{},\"poisoned_recovered\":{},\"invalid_frees\":{}}}",
            id,
            d.injected_faults,
            d.fallback_routes,
            d.degraded_groups,
            d.degraded_shards,
            d.queue_overflows,
            d.poisoned_recovered,
            d.invalid_frees,
        );
    }
    out.push_str("]}");
    out
}

fn render_run(r: &EvalResult, flags: &Flags) -> String {
    let (hds_mr, halo_mr) = r.miss_reduction_row();
    let (hds_su, halo_su) = r.speedup_row();
    let base = r.baseline();
    let halo = r.halo();
    let hds = r.hds();
    // Optional backends render generically from the registry — a new
    // backend is one registry entry, not a new arm here.
    let extras = || {
        r.backends.iter().filter_map(|(id, res)| {
            let spec = halo::core::backend_spec(id).expect("measured backends are registered");
            spec.optional.then_some((spec, res))
        })
    };
    let mut out = String::new();
    if flags.json {
        let frag = halo.frag.unwrap_or_default();
        let mut extra_json = String::new();
        for (spec, res) in extras() {
            let _ = write!(
                extra_json,
                ",\"{}\":{{\"l1d_misses\":{},\"miss_reduction\":{:.4},\"speedup\":{:.4}}}",
                spec.id,
                res.measurement.stats.l1_misses,
                res.measurement.miss_reduction_vs(&base.measurement),
                res.measurement.speedup_vs(&base.measurement),
            );
        }
        let _ = writeln!(
            out,
            "{{\"benchmark\":\"{}\",\"halo\":{{\"l1d_misses\":{},\"cycles\":{:.0},\"miss_reduction\":{:.4},\"speedup\":{:.4},\"groups\":{},\"monitored_sites\":{},\"granularity\":\"{}\",\"auto_declined\":{},\"frag_fraction\":{:.4},\"wasted_bytes\":{},\"plans\":{}}},\"hds\":{{\"l1d_misses\":{},\"miss_reduction\":{:.4},\"speedup\":{:.4},\"hot_streams\":{}}},\"baseline\":{{\"l1d_misses\":{},\"cycles\":{:.0}}}{},\"coherence\":{}{}{}}}",
            r.name,
            halo.measurement.stats.l1_misses,
            halo.measurement.cycles,
            halo_mr,
            halo_su,
            r.optimised.groups.len(),
            r.optimised.ident.site_bits.len(),
            r.optimised.granularity,
            r.optimised.auto_declined,
            frag.frag_fraction(),
            frag.wasted_bytes(),
            plans_json(r),
            hds.measurement.stats.l1_misses,
            hds_mr,
            hds_su,
            r.hds_analysis.stats.hot_streams,
            base.measurement.stats.l1_misses,
            base.measurement.cycles,
            extra_json,
            coherence_json(r),
            remote_free_json(r),
            degradation_json(r, flags),
        );
    } else {
        let _ = writeln!(out, "=== {} ===", r.name);
        let _ = writeln!(
            out,
            "  baseline: {} L1D misses, {:.2} Mcycles",
            base.measurement.stats.l1_misses,
            base.measurement.cycles / 1e6
        );
        let _ = writeln!(
            out,
            "  HALO:     {} L1D misses ({:+.1}%), {:.2} Mcycles ({:+.1}%), {} groups via {} sites, {} granularity{}{}",
            halo.measurement.stats.l1_misses,
            halo_mr * 100.0,
            halo.measurement.cycles / 1e6,
            halo_su * 100.0,
            r.optimised.groups.len(),
            r.optimised.ident.site_bits.len(),
            r.optimised.granularity,
            if r.optimised.auto_declined { " (auto declined to group)" } else { "" },
            if r.optimised.groups.is_empty() {
                String::new()
            } else {
                format!(", plans {}", plans_text(r))
            },
        );
        if flags.hds {
            let _ = writeln!(
                out,
                "  HDS:      {} L1D misses ({:+.1}%), speedup {:+.1}%, {} hot streams",
                hds.measurement.stats.l1_misses,
                hds_mr * 100.0,
                hds_su * 100.0,
                r.hds_analysis.stats.hot_streams,
            );
        }
        for (spec, res) in extras() {
            let _ = writeln!(
                out,
                "  {:<9} {} L1D misses ({:+.1}%), speedup {:+.1}%",
                format!("{}:", spec.id),
                res.measurement.stats.l1_misses,
                res.measurement.miss_reduction_vs(&base.measurement) * 100.0,
                res.measurement.speedup_vs(&base.measurement) * 100.0,
            );
        }
        // Coherence traffic only exists once a second logical thread runs,
        // so single-threaded rows stay byte-identical to the pre-coherence
        // output.
        let threads = r.backends.iter().map(|(_, res)| res.thread_stats.len()).max().unwrap_or(1);
        if threads > 1 {
            let parts: Vec<String> = r
                .backends
                .iter()
                .map(|(id, res)| {
                    let c = res.measurement.coherence;
                    format!("{id} {} inval/{} upgr", c.invalidations, c.upgrades)
                })
                .collect();
            let _ = writeln!(out, "  coherence ({threads} threads): {}", parts.join(", "));
            if let Some(s) = r.backends.iter().find_map(|(_, res)| res.sharded.as_ref()) {
                let _ = writeln!(
                    out,
                    "  remote-free queues: {} pushes, {} drained, peak depth {}",
                    s.remote_frees, s.remote_drained, s.remote_peak_queue
                );
            }
        }
        // Degradation-ladder summary — same gating as the JSON section:
        // only `--inject` runs and genuinely degraded runs print it, so
        // ordinary output stays byte-identical.
        for (id, d) in r.backends.iter().filter_map(|(id, res)| res.degrade.map(|d| (id, d))) {
            if flags.inject.is_some() || d.any() {
                let _ = writeln!(
                    out,
                    "  degradation ({id}): {} injected, {} fallback routes, {} degraded groups, \
                     {} degraded shards, {} queue overflows, {} poisoned recovered, {} invalid frees",
                    d.injected_faults,
                    d.fallback_routes,
                    d.degraded_groups,
                    d.degraded_shards,
                    d.queue_overflows,
                    d.poisoned_recovered,
                    d.invalid_frees,
                );
            }
        }
    }
    out
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let workloads = find_workloads(flags.benchmark.as_deref())?;
    if flags.measure == "real" {
        if flags.inject.is_some() {
            // Wall-clock rows have no degradation report to surface the
            // schedule in, so silently measuring a degraded run would
            // corrupt comparisons.
            return Err(
                "--inject applies to simulated measurement only (drop --measure real)".to_string()
            );
        }
        return cmd_run_real(&workloads, &flags);
    }
    run_sweep(&workloads, |w| Ok(render_run(&run_one(w, &flags)?, &flags)))
}

/// `halo run --measure real`: wall-clock the thread-safe sharded runtime
/// on real OS threads instead of the simulated hierarchy — the paper's
/// multi-core claims the simulator cannot speak to. Each workload's
/// optimised program is executed `T` times (T = available cores capped by
/// the shard count), first serially on one thread, then with one engine
/// per OS thread sharing the sharded allocator, and the wall-clock ratio
/// is reported. On a single-core host the mode degrades gracefully: it
/// prints why and exits successfully, so scripted invocations stay green.
/// `HALO_THREADS` overrides the detected core count (as everywhere else),
/// which also makes the multi-engine path testable on any host.
fn cmd_run_real(workloads: &[Workload], flags: &Flags) -> Result<(), String> {
    use halo::vm::{Engine, NullMonitor};
    let cores = match std::env::var("HALO_THREADS") {
        Ok(v) => halo::core::parse_halo_threads(&v)?,
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    };
    if cores < 2 {
        println!(
            "--measure real needs a multi-core host (available_parallelism reports {cores}); \
             skipping wall-clock measurement"
        );
        return Ok(());
    }
    // Wall-clock rows are noise-sensitive; never fan the sweep out.
    for w in workloads {
        let config = config_for(w, flags);
        let halo = halo::core::Halo::new(config.halo);
        let opt = halo
            .optimise_with_arg(&w.program, w.train.seed, w.train.arg)
            .map_err(|e| format!("{}: {e}", w.name))?;
        let shards = config.shards; // config_for applied --shards already
        let runs = cores.min(shards.max(2));
        let alloc = halo.make_sharded_allocator(&opt, shards);
        let run_once = |seed_salt: u64| -> Result<u64, String> {
            let mut handle = &alloc;
            let mut engine = Engine::new(&opt.program)
                .with_seed(config.measure.seed ^ seed_salt)
                .with_entry_arg(config.measure.entry_arg)
                .with_limits(config.measure.limits);
            engine
                .run(&mut handle, &mut NullMonitor)
                .map(|exit| exit.instructions)
                .map_err(|e| format!("{}: {e}", w.name))
        };
        let serial_start = Instant::now();
        let mut instructions = 0u64;
        for i in 0..runs {
            instructions += run_once(i as u64)?;
        }
        let serial = serial_start.elapsed();
        let parallel_start = Instant::now();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..runs).map(|i| scope.spawn(move || run_once(i as u64))).collect();
            handles.into_iter().map(|h| h.join().expect("engine thread")).collect::<Vec<_>>()
        });
        let parallel = parallel_start.elapsed();
        for r in results {
            r?;
        }
        let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
        if flags.json {
            println!(
                "{{\"benchmark\":\"{}\",\"measure\":\"real\",\"engines\":{},\"shards\":{},\"instructions\":{},\"serial_ms\":{:.3},\"parallel_ms\":{:.3},\"speedup\":{:.3}}}",
                w.name,
                runs,
                shards,
                instructions,
                serial.as_secs_f64() * 1e3,
                parallel.as_secs_f64() * 1e3,
                speedup,
            );
        } else {
            println!(
                "{:<10} real: {} engines over {} shards, serial {:.1}ms, parallel {:.1}ms, speedup {:.2}x",
                w.name,
                runs,
                shards,
                serial.as_secs_f64() * 1e3,
                parallel.as_secs_f64() * 1e3,
                speedup,
            );
        }
    }
    Ok(())
}

fn cmd_plot(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let metric_is_speedup = match flags.metric.as_str() {
        "misses" => false,
        "speedup" => true,
        other => return Err(format!("unknown metric '{other}' (misses|speedup)")),
    };
    println!(
        "{} vs jemalloc-style baseline (█ = HALO, ░ = hot data streams)\n",
        if metric_is_speedup { "speedup" } else { "L1D miss reduction" }
    );
    let workloads = find_workloads(flags.benchmark.as_deref())?;
    run_sweep(&workloads, |w| {
        let r = run_one(w, &flags)?;
        let (hds, halo) = if metric_is_speedup { r.speedup_row() } else { r.miss_reduction_row() };
        Ok(format!(
            "{:<10} {:>7} {}\n{:<10} {:>7} {}\n",
            r.name,
            pct(halo),
            bar(halo, '█'),
            "",
            pct(hds),
            bar(hds, '░')
        ))
    })
}

/// One row of the `halo bench` baseline file.
struct BenchRow {
    name: &'static str,
    samples: u32,
    best_ns: u128,
    mean_ns: u128,
}

/// Run `routine` `samples` times; report best and mean wall-clock.
fn time_samples(name: &'static str, samples: u32, mut routine: impl FnMut()) -> BenchRow {
    let (mut best, mut total) = (u128::MAX, 0u128);
    for _ in 0..samples {
        let start = Instant::now();
        routine();
        let ns = start.elapsed().as_nanos();
        best = best.min(ns);
        total += ns;
    }
    BenchRow { name, samples, best_ns: best, mean_ns: total / u128::from(samples.max(1)) }
}

/// `halo bench`: machine-readable performance baselines for the profiling
/// hot path and the end-to-end pipeline, written to `BENCH_profile.json`
/// so the perf trajectory is tracked across PRs.
///
/// Always measures the §5.1 paper defaults — run-configuration flags are
/// rejected so a flagged invocation can't silently write rows measured
/// under a different configuration into the committed baseline file.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.benchmark.is_some()
        || flags.affinity_distance.is_some()
        || flags.chunk_size.is_some()
        || flags.max_spare_chunks.is_some()
        || flags.max_groups.is_some()
        || flags.merge_tolerance.is_some()
        || flags.granularity.is_some()
        || flags.reuse_policy.is_some()
        || flags.shards.is_some()
        || flags.inject.is_some()
        || flags.measure != "sim" // the parse-time default
        || flags.metric != "misses" // the parse-time default
        || flags.hds
        || flags.random
        || flags.ptmalloc
        || flags.phases.is_some()
        || flags.decay.is_some()
        || flags.drift_threshold.is_some()
        || flags.regroup_every.is_some()
    {
        return Err("halo bench only accepts --out, --compare, and --json (baselines \
                    always measure the paper-default configuration)"
            .to_string());
    }
    // Read (and validate) the old baseline *before* spending a minute
    // measuring, so a bad path or stale schema fails fast.
    let old_rows = match &flags.compare {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            Some(halo_bench::compare::parse_baseline(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let mut rows = Vec::new();

    // Hot-path micro-workloads — the bodies live in halo_bench and are
    // shared with the Criterion micro-benches of the same names, so the
    // rows stay comparable.
    rows.push(time_samples("profile/affinity_queue_100k", 10, || {
        std::hint::black_box(halo_bench::affinity_queue_100k());
    }));
    rows.push(time_samples("profile/object_find_100k", 10, || {
        std::hint::black_box(halo_bench::object_find_100k());
    }));
    rows.push(time_samples("mem/group_alloc_malloc_free_100k", 10, || {
        std::hint::black_box(halo_bench::group_alloc_malloc_free_100k());
    }));
    rows.push(time_samples("mem/sharded_alloc_mt", 10, || {
        std::hint::black_box(halo_bench::sharded_alloc_mt());
    }));
    rows.push(time_samples("serve/plan_swap", 10, || {
        std::hint::black_box(halo_bench::serve_plan_swap());
    }));
    rows.push(time_samples("cache/coherent_access_100k", 10, || {
        std::hint::black_box(halo_bench::coherent_access_100k());
    }));

    // Million-node graph pipeline (DESIGN.md §13): sharded generation →
    // parallel subgraph union → CSR finalise, then one Fig. 6 grouping
    // pass. The grouping row times grouping alone on a pre-built graph.
    let spec = halo_bench::GraphSpec::million();
    rows.push(time_samples("graph/build_csr_1m", 3, || {
        std::hint::black_box(halo_bench::build_graph(&spec).len());
    }));
    let graph = halo_bench::build_graph(&spec);
    rows.push(time_samples("graph/group_1m_nodes", 3, || {
        std::hint::black_box(halo_bench::group_graph_nodes(&graph));
    }));
    drop(graph);

    // End-to-end pipeline (profile → group → identify → rewrite →
    // measure) on the two cheapest workloads.
    for name in ["toy", "povray"] {
        let workloads = find_workloads(Some(name))?;
        let w = &workloads[0];
        let config = paper_defaults(w);
        let label: &'static str =
            if name == "toy" { "pipeline/evaluate_toy" } else { "pipeline/evaluate_povray" };
        rows.push(time_samples(label, 3, || {
            let r = evaluate_with_arg(&w.program, w.name, w.train.seed, w.train.arg, &config)
                .expect("bench workload runs");
            std::hint::black_box(r.halo().measurement.stats.l1_misses);
        }));
    }

    let mut json = String::from("{\n  \"schema\": \"halo-bench/v1\",\n  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"samples\": {}, \"best_ns\": {}, \"mean_ns\": {}}}{}",
            row.name,
            row.samples,
            row.best_ns,
            row.mean_ns,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let path = flags.out.as_deref().unwrap_or("BENCH_profile.json");
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;

    for row in &rows {
        println!(
            "{:<32} best {:>10.3}ms  mean {:>10.3}ms  ({} samples)",
            row.name,
            row.best_ns as f64 / 1e6,
            row.mean_ns as f64 / 1e6,
            row.samples
        );
    }
    println!("wrote {path}");
    if let Some(old) = old_rows {
        let new: Vec<halo_bench::compare::BaselineRow> = rows
            .iter()
            .map(|r| halo_bench::compare::BaselineRow {
                name: r.name.to_string(),
                samples: u64::from(r.samples),
                best_ns: r.best_ns,
                mean_ns: r.mean_ns,
            })
            .collect();
        let lines = halo_bench::compare::compare(&old, &new);
        let old_path = flags.compare.as_deref().unwrap_or_default();
        print!("{}", halo_bench::compare::render_comparison(old_path, &lines));
    }
    if flags.json {
        print!("{json}");
    }
    Ok(())
}

/// `halo serve`: the online re-optimisation loop (DESIGN.md §15) over a
/// scripted workload-mix shift. Each phase of the `--phases` script serves
/// a workload for a number of windows; every window streams a decayed
/// profile, re-groups it, and hot-swaps the serving allocator's per-group
/// plans when the grouping drifts past the threshold (or the measured miss
/// reduction regresses). The per-epoch table shows the serving allocator
/// against the *static* twin — the phase-0 plan never re-optimised — so a
/// phase shift visibly decays static while serve recovers.
///
/// The report replays deterministically for a fixed script and flags,
/// except the `swap_latency_us` wall-clock fields (CI strips them before
/// comparing replays).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.benchmark.is_some()
        || flags.affinity_distance.is_some()
        || flags.chunk_size.is_some()
        || flags.max_spare_chunks.is_some()
        || flags.max_groups.is_some()
        || flags.merge_tolerance.is_some()
        || flags.granularity.is_some()
        || flags.reuse_policy.is_some()
        || flags.inject.is_some()
        || flags.measure != "sim" // the parse-time default
        || flags.metric != "misses" // the parse-time default
        || flags.out.is_some()
        || flags.compare.is_some()
        || flags.hds
        || flags.random
        || flags.ptmalloc
    {
        return Err("halo serve only accepts --phases, --shards, --decay, \
                    --drift-threshold, --regroup-every, and --json"
            .to_string());
    }
    let script = flags
        .phases
        .as_deref()
        .ok_or("halo serve needs --phases (e.g. --phases server:1,xalanc-mt:2)")?;

    // Any listed workload can serve; phases may revisit a name, so the
    // script resolves against the full universe rather than the
    // duplicate-rejecting `find_workloads` selector.
    let mut universe = all();
    universe.push(halo::workloads::toy::build());
    universe.extend(halo::workloads::multithreaded());
    let mut phases = Vec::new();
    for part in script.split(',') {
        let (name, windows) = part
            .split_once(':')
            .ok_or_else(|| format!("phase '{part}' is not name:windows (e.g. server:2)"))?;
        let windows: u64 = windows.parse().ok().filter(|&w| w > 0).ok_or_else(|| {
            format!("phase '{part}' needs a positive window count (e.g. server:2)")
        })?;
        let w = universe
            .iter()
            .find(|w| w.name == name)
            .ok_or_else(|| format!("unknown benchmark '{name}' (try `halo list`)"))?;
        phases.push(ServePhase {
            name: w.name.into(),
            program: w.program.clone(),
            train_seed: w.train.seed,
            train_arg: w.train.arg,
            ref_seed: w.reference.seed,
            ref_arg: w.reference.arg,
            windows,
        });
    }

    let mut config = ServeConfig::default();
    if let Some(n) = flags.shards {
        config.shards = n;
    }
    if let Some(d) = flags.decay {
        config.decay = d;
    }
    if let Some(d) = flags.drift_threshold {
        config.drift_threshold = d;
    }
    if let Some(n) = flags.regroup_every {
        config.regroup_every = n;
    }
    let report = serve(&phases, &config).map_err(|e| format!("serve: {e}"))?;

    if flags.json {
        let mut epochs = String::from("[");
        for (i, row) in report.rows.iter().enumerate() {
            if i > 0 {
                epochs.push(',');
            }
            let drift = row.drift.map_or("null".to_string(), |d| format!("{d:.4}"));
            let _ = write!(
                epochs,
                "{{\"window\":{},\"phase\":\"{}\",\"plan_epoch\":{},\"drift\":{},\"swapped\":{},\"swap_latency_us\":{:.1},\"miss_reduction\":{:.4},\"static_miss_reduction\":{:.4}}}",
                row.window,
                row.phase,
                row.plan_epoch,
                drift,
                row.swapped,
                row.swap_latency_us,
                row.miss_reduction,
                row.static_miss_reduction,
            );
        }
        epochs.push(']');
        println!(
            "{{\"windows\":{},\"swaps\":{},\"final_miss_reduction\":{:.4},\"final_static_miss_reduction\":{:.4},\"recovered\":{},\"epochs\":{}}}",
            report.rows.len(),
            report.swaps,
            report.final_miss_reduction,
            report.final_static_miss_reduction,
            report.recovered,
            epochs,
        );
    } else {
        println!(
            "{:<6} {:<10} {:>5} {:>6} {:>4} {:>12} {:>8} {:>8}",
            "window", "phase", "epoch", "drift", "swap", "latency(us)", "serve", "static"
        );
        for row in &report.rows {
            println!(
                "{:<6} {:<10} {:>5} {:>6} {:>4} {:>12.1} {:>8} {:>8}",
                row.window,
                row.phase,
                row.plan_epoch,
                row.drift.map_or("-".to_string(), |d| format!("{d:.2}")),
                if row.swapped { "yes" } else { "-" },
                row.swap_latency_us,
                pct(row.miss_reduction),
                pct(row.static_miss_reduction),
            );
        }
        println!(
            "\n{} swap{} applied; final miss reduction: serve {} vs static {} — {}",
            report.swaps,
            if report.swaps == 1 { "" } else { "s" },
            pct(report.final_miss_reduction),
            pct(report.final_static_miss_reduction),
            if report.recovered {
                "serve recovered the phase shift"
            } else {
                "serve did not end ahead of the static plan"
            },
        );
    }
    Ok(())
}

fn pct(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

fn bar(fraction: f64, fill: char) -> String {
    let cells = (fraction.abs() * 100.0).round() as usize;
    let cells = cells.min(60);
    let body: String = std::iter::repeat_n(fill, cells).collect();
    if fraction < 0.0 {
        format!("-{body}")
    } else {
        body
    }
}
