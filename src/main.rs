//! The `halo` command-line tool, mirroring the paper artefact's workflow
//! (§A.5): `halo baseline`, `halo run`, and `halo plot`, with the §A.8
//! per-benchmark flags (`--chunk-size`, `--max-spare-chunks`,
//! `--max-groups`, …).
//!
//! ```text
//! halo list
//! halo baseline --benchmark povray
//! halo run --benchmark povray --affinity-distance 128 --json
//! halo run --benchmark omnetpp --chunk-size 131072 --max-spare-chunks 0
//! halo plot
//! ```

use halo::core::{evaluate_with_arg, measure, EvalConfig, EvalResult};
use halo::mem::SizeClassAllocator;
use halo::workloads::{all, Workload};
use std::process::ExitCode;

/// Rust ignores SIGPIPE by default, which turns `halo list | head` into a
/// broken-pipe panic; restore the default disposition so the process just
/// terminates like other CLI tools.
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() -> ExitCode {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "list" => cmd_list(),
        "baseline" => cmd_baseline(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "plot" => cmd_plot(&args[1..]),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "halo — post-link heap-layout optimisation (CGO 2020 reproduction)\n\
         \n\
         USAGE:\n\
         \thalo list\n\
         \thalo baseline --benchmark <name>\n\
         \thalo run --benchmark <name|all> [options]\n\
         \thalo plot [--metric misses|speedup]\n\
         \n\
         RUN OPTIONS (defaults follow §5.1):\n\
         \t--affinity-distance <bytes>   affinity distance A (default 128)\n\
         \t--chunk-size <bytes>          group-chunk size (default 1048576)\n\
         \t--max-spare-chunks <n|inf>    dirty chunks kept before purging (default 1)\n\
         \t--max-groups <n>              cap on groups (default unlimited)\n\
         \t--merge-tolerance <fraction>  grouping slack T (default 0.05)\n\
         \t--hds                         also run the hot-data-streams technique\n\
         \t--random                      also run the random four-pool allocator\n\
         \t--ptmalloc                    also run the ptmalloc2-style baseline\n\
         \t--json                        machine-readable output"
    );
}

struct Flags {
    benchmark: Option<String>,
    affinity_distance: Option<u64>,
    chunk_size: Option<u64>,
    max_spare_chunks: Option<usize>,
    max_groups: Option<usize>,
    merge_tolerance: Option<f64>,
    hds: bool,
    random: bool,
    ptmalloc: bool,
    json: bool,
    metric: String,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        benchmark: None,
        affinity_distance: None,
        chunk_size: None,
        max_spare_chunks: None,
        max_groups: None,
        merge_tolerance: None,
        hds: false,
        random: false,
        ptmalloc: false,
        json: false,
        metric: "misses".to_string(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--benchmark" => flags.benchmark = Some(value("--benchmark")?),
            "--affinity-distance" => {
                flags.affinity_distance =
                    Some(value("--affinity-distance")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--chunk-size" => {
                flags.chunk_size = Some(value("--chunk-size")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--max-spare-chunks" => {
                let v = value("--max-spare-chunks")?;
                flags.max_spare_chunks = Some(if v == "inf" {
                    usize::MAX
                } else {
                    v.parse().map_err(|e| format!("{e}"))?
                });
            }
            "--max-groups" => {
                flags.max_groups = Some(value("--max-groups")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--merge-tolerance" => {
                flags.merge_tolerance =
                    Some(value("--merge-tolerance")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--metric" => flags.metric = value("--metric")?,
            "--hds" => flags.hds = true,
            "--random" => flags.random = true,
            "--ptmalloc" => flags.ptmalloc = true,
            "--json" => flags.json = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(flags)
}

fn find_workloads(selector: Option<&str>) -> Result<Vec<Workload>, String> {
    let mut workloads = all();
    workloads.push(halo::workloads::toy::build()); // the Fig. 2 example
    match selector {
        None | Some("all") => Ok(workloads),
        Some(name) => workloads
            .into_iter()
            .find(|w| w.name == name)
            .map(|w| vec![w])
            .ok_or_else(|| format!("unknown benchmark '{name}' (try `halo list`)")),
    }
}

fn config_for(workload: &Workload, flags: &Flags) -> EvalConfig {
    let mut config = paper_defaults(workload);
    if let Some(a) = flags.affinity_distance {
        config.halo.profile.affinity_distance = a;
    }
    if let Some(c) = flags.chunk_size {
        config.halo.alloc.chunk_size = c;
        config.halo.alloc.slab_size = (c * 64).max(4 << 20);
    }
    if let Some(s) = flags.max_spare_chunks {
        config.halo.alloc.max_spare_chunks = s;
    }
    if let Some(g) = flags.max_groups {
        config.halo.grouping.max_groups = Some(g);
    }
    if let Some(t) = flags.merge_tolerance {
        config.halo.grouping.merge_tolerance = t;
    }
    config.with_random = flags.random;
    config.with_ptmalloc = flags.ptmalloc;
    config
}

/// The §5.1 defaults with the §A.8 per-benchmark flags (the same policy the
/// bench harnesses use, re-stated here so the binary stands alone).
fn paper_defaults(workload: &Workload) -> EvalConfig {
    let mut config = EvalConfig::default();
    config.halo.limits =
        halo::vm::EngineLimits { max_instructions: 2_000_000_000, max_call_depth: 256 };
    config.halo.grouping.min_weight = 32;
    config.measure.limits = config.halo.limits;
    config.measure.seed = workload.reference.seed;
    config.measure.entry_arg = workload.reference.arg;
    match workload.name {
        "omnetpp" => {
            config.halo.alloc.chunk_size = 131_072;
            config.halo.alloc.slab_size = 131_072 * 64;
            config.halo.alloc.max_spare_chunks = usize::MAX;
        }
        "xalanc" => config.halo.alloc.max_spare_chunks = usize::MAX,
        "roms" => config.halo.grouping.max_groups = Some(4),
        _ => {}
    }
    config
}

fn cmd_list() -> Result<(), String> {
    println!("{:<10} {:>12} {:>12}  note", "benchmark", "train arg", "ref arg");
    for w in all() {
        println!("{:<10} {:>12} {:>12}  {}", w.name, w.train.arg, w.reference.arg, w.note);
    }
    Ok(())
}

fn cmd_baseline(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    for w in find_workloads(flags.benchmark.as_deref())? {
        let config = config_for(&w, &flags);
        let mut alloc = SizeClassAllocator::new();
        let m = measure(&w.program, &mut alloc, &config.measure)
            .map_err(|e| format!("{}: {e}", w.name))?;
        if flags.json {
            println!(
                "{{\"benchmark\":\"{}\",\"config\":\"baseline\",\"l1d_misses\":{},\"cycles\":{:.0},\"instructions\":{},\"allocs\":{}}}",
                w.name, m.stats.l1_misses, m.cycles, m.instructions, m.allocs
            );
        } else {
            println!(
                "{:<10} baseline: {} L1D misses, {:.2} Mcycles, {} allocs",
                w.name,
                m.stats.l1_misses,
                m.cycles / 1e6,
                m.allocs
            );
        }
    }
    Ok(())
}

fn run_one(w: &Workload, flags: &Flags) -> Result<EvalResult, String> {
    let mut config = config_for(w, flags);
    config.with_random = flags.random;
    config.with_ptmalloc = flags.ptmalloc;
    evaluate_with_arg(&w.program, w.name, w.train.seed, w.train.arg, &config)
        .map_err(|e| format!("{}: {e}", w.name))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    for w in find_workloads(flags.benchmark.as_deref())? {
        let r = run_one(&w, &flags)?;
        let (hds_mr, halo_mr) = r.miss_reduction_row();
        let (hds_su, halo_su) = r.speedup_row();
        if flags.json {
            let frag = r.halo.frag.unwrap_or_default();
            println!(
                "{{\"benchmark\":\"{}\",\"halo\":{{\"l1d_misses\":{},\"cycles\":{:.0},\"miss_reduction\":{:.4},\"speedup\":{:.4},\"groups\":{},\"monitored_sites\":{},\"frag_pct\":{:.4},\"frag_bytes\":{}}},\"hds\":{{\"l1d_misses\":{},\"miss_reduction\":{:.4},\"speedup\":{:.4},\"hot_streams\":{}}},\"baseline\":{{\"l1d_misses\":{},\"cycles\":{:.0}}}}}",
                r.name,
                r.halo.measurement.stats.l1_misses,
                r.halo.measurement.cycles,
                halo_mr,
                halo_su,
                r.optimised.groups.len(),
                r.optimised.ident.site_bits.len(),
                frag.frag_fraction(),
                frag.wasted_bytes(),
                r.hds.measurement.stats.l1_misses,
                hds_mr,
                hds_su,
                r.hds_analysis.stats.hot_streams,
                r.baseline.measurement.stats.l1_misses,
                r.baseline.measurement.cycles,
            );
        } else {
            println!("=== {} ===", r.name);
            println!(
                "  baseline: {} L1D misses, {:.2} Mcycles",
                r.baseline.measurement.stats.l1_misses,
                r.baseline.measurement.cycles / 1e6
            );
            println!(
                "  HALO:     {} L1D misses ({:+.1}%), {:.2} Mcycles ({:+.1}%), {} groups via {} sites",
                r.halo.measurement.stats.l1_misses,
                halo_mr * 100.0,
                r.halo.measurement.cycles / 1e6,
                halo_su * 100.0,
                r.optimised.groups.len(),
                r.optimised.ident.site_bits.len(),
            );
            if flags.hds {
                println!(
                    "  HDS:      {} L1D misses ({:+.1}%), speedup {:+.1}%, {} hot streams",
                    r.hds.measurement.stats.l1_misses,
                    hds_mr * 100.0,
                    hds_su * 100.0,
                    r.hds_analysis.stats.hot_streams,
                );
            }
            if let Some(random) = &r.random {
                println!(
                    "  random:   {} L1D misses, speedup {:+.1}%",
                    random.measurement.stats.l1_misses,
                    random.measurement.speedup_vs(&r.baseline.measurement) * 100.0,
                );
            }
            if let Some(pt) = &r.ptmalloc {
                println!(
                    "  ptmalloc: {} L1D misses ({:+.1}% vs jemalloc-style)",
                    pt.measurement.stats.l1_misses,
                    (1.0 - r.baseline.measurement.stats.l1_misses as f64
                        / pt.measurement.stats.l1_misses.max(1) as f64)
                        * 100.0,
                );
            }
        }
    }
    Ok(())
}

fn cmd_plot(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let metric_is_speedup = match flags.metric.as_str() {
        "misses" => false,
        "speedup" => true,
        other => return Err(format!("unknown metric '{other}' (misses|speedup)")),
    };
    println!(
        "{} vs jemalloc-style baseline (█ = HALO, ░ = hot data streams)\n",
        if metric_is_speedup { "speedup" } else { "L1D miss reduction" }
    );
    for w in find_workloads(flags.benchmark.as_deref())? {
        let r = run_one(&w, &flags)?;
        let (hds, halo) = if metric_is_speedup { r.speedup_row() } else { r.miss_reduction_row() };
        println!("{:<10} {:>7} {}", r.name, pct(halo), bar(halo, '█'));
        println!("{:<10} {:>7} {}", "", pct(hds), bar(hds, '░'));
    }
    Ok(())
}

fn pct(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

fn bar(fraction: f64, fill: char) -> String {
    let cells = (fraction.abs() * 100.0).round() as usize;
    let cells = cells.min(60);
    let body: String = std::iter::repeat_n(fill, cells).collect();
    if fraction < 0.0 {
        format!("-{body}")
    } else {
        body
    }
}
